#!/usr/bin/env python3
"""CI perf-regression gate over the BENCH_*.json trajectory.

Diffs freshly emitted bench JSONs against the committed baselines,
walking both documents in lockstep:

* Performance metrics (wall-clock trial rates, points/sec, KLOPS,
  speedups) are machine-dependent, so they are checked in the
  regression direction only: fresh may be faster without limit, but
  a slowdown beyond --perf-tol (default 20%) fails.
* Everything else numeric is deterministic for a fixed seed and
  must match within --rel-tol (default 1e-9).
* Wall-clock bookkeeping (wall_seconds, hardware_concurrency) and
  provenance (config_hash covers it already) are ignored.
* Shape changes (missing/extra keys, different array lengths or
  value kinds) always fail: the trajectory files are an interface.

Usage:
    check_bench_regression.py BASELINE=FRESH [BASELINE=FRESH ...]
        [--perf-tol 0.2] [--rel-tol 1e-9]

Example (the CI smoke job):
    python3 tools/check_bench_regression.py \
        BENCH_fig4_sweep.json=BENCH_fig4_sweep.ci.json \
        BENCH_mc_engine.json=BENCH_mc_engine.ci.json

Exit status: 0 clean, 1 regression or shape mismatch, 2 usage.
Standard library only.
"""

import argparse
import json
import re
import sys

# Wall-clock performance metrics: regression-only, loose tolerance.
# (klops is NOT here: it is simulated-time throughput, deterministic
# for a fixed config, so the exact check gates it more tightly than
# a 20% band would.)
PERF_KEY = re.compile(r"_per_sec$")

# Machine/bookkeeping noise: never compared. `speedup*` keys are
# ratios of two gated rates — checking them too would double-count
# noise (a fast scalar baseline run reads as a "batch regression").
# `dispatched_*` records which SIMD width/ISA auto-dispatch picked
# on the bench machine, a hardware fact, not a result.
IGNORE_KEY = re.compile(
    r"(^wall_seconds$|^hardware_concurrency$|^speedup"
    r"|^dispatched_)")


def classify(key):
    if IGNORE_KEY.search(key):
        return "ignore"
    if PERF_KEY.search(key):
        return "perf"
    return "exact"


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(
        value, bool)


def compare(baseline, fresh, path, args, problems):
    """Walk both trees; append problem strings to `problems`."""
    if is_number(baseline) and is_number(fresh):
        # int vs float is not a shape change: the emitter prints
        # integral doubles without a decimal point.
        scale = max(abs(baseline), abs(fresh))
        if scale and abs(baseline - fresh) / scale > args.rel_tol:
            problems.append(
                f"{path}: deterministic metric drifted "
                f"({baseline} -> {fresh})")
        return
    if type(baseline) is not type(fresh):
        problems.append(
            f"{path}: kind changed "
            f"({type(baseline).__name__} -> {type(fresh).__name__})")
        return
    if isinstance(baseline, dict):
        for key in sorted(set(baseline) | set(fresh)):
            sub = f"{path}.{key}" if path else key
            if key not in fresh:
                problems.append(f"{sub}: missing from fresh output")
            elif key not in baseline:
                problems.append(f"{sub}: new key not in baseline")
            elif classify(key) == "ignore":
                continue
            elif classify(key) == "perf":
                check_perf(baseline[key], fresh[key], sub, args,
                           problems)
            else:
                compare(baseline[key], fresh[key], sub, args,
                        problems)
    elif isinstance(baseline, list):
        if len(baseline) != len(fresh):
            problems.append(
                f"{path}: length changed "
                f"({len(baseline)} -> {len(fresh)})")
            return
        for i, (b, f) in enumerate(zip(baseline, fresh)):
            compare(b, f, f"{path}[{i}]", args, problems)
    elif isinstance(baseline, bool) or isinstance(baseline, str):
        if baseline != fresh:
            problems.append(
                f"{path}: value changed ({baseline!r} -> {fresh!r})")


def check_perf(baseline, fresh, path, args, problems):
    if not isinstance(baseline, (int, float)) or isinstance(
            baseline, bool):
        compare(baseline, fresh, path, args, problems)
        return
    if not isinstance(fresh, (int, float)):
        problems.append(f"{path}: kind changed")
        return
    if baseline > 0 and fresh < baseline * (1.0 - args.perf_tol):
        loss = 100.0 * (1.0 - fresh / baseline)
        problems.append(
            f"{path}: perf regression {loss:.1f}% "
            f"({baseline:.6g} -> {fresh:.6g}, "
            f"tolerance {100 * args.perf_tol:.0f}%)")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("pairs", nargs="+",
                        metavar="BASELINE=FRESH")
    parser.add_argument("--perf-tol", type=float, default=0.20,
                        help="allowed perf regression fraction "
                             "(default 0.20)")
    parser.add_argument("--rel-tol", type=float, default=1e-9,
                        help="relative tolerance for deterministic "
                             "metrics (default 1e-9)")
    args = parser.parse_args()

    failures = 0
    for pair in args.pairs:
        if "=" not in pair:
            parser.error(f"expected BASELINE=FRESH, got {pair!r}")
        baseline_path, fresh_path = pair.split("=", 1)
        try:
            with open(baseline_path) as f:
                baseline = json.load(f)
            with open(fresh_path) as f:
                fresh = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"FAIL {baseline_path} vs {fresh_path}: {e}")
            failures += 1
            continue
        problems = []
        compare(baseline, fresh, "", args, problems)
        if problems:
            failures += 1
            print(f"FAIL {baseline_path} vs {fresh_path}: "
                  f"{len(problems)} problem(s)")
            for p in problems:
                print(f"  {p}")
        else:
            print(f"OK   {baseline_path} vs {fresh_path}")

    if failures:
        print(f"{failures} of {len(args.pairs)} comparisons failed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
