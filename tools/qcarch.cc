/**
 * @file
 * qcarch — the one-binary driver for the experiment platform:
 * every paper artifact (and any scenario the facade can express)
 * is reproducible from a JSON file and this CLI.
 *
 *   qcarch run <config.json> [--out PATH]
 *       One qc::runExperiment call; prints the full Result JSON
 *       (stdout, or --out).
 *
 *   qcarch sweep <spec.json> [--threads N] [--out PATH] [--quiet]
 *                [--resume PREV.json] [--checkpoint-seconds S]
 *                [--hoard DIR]
 *       Expand and execute a SweepSpec on the parallel sweep
 *       engine; writes the aggregated document (stdout, or --out).
 *       Output is bit-identical for a given spec regardless of
 *       --threads; progress goes to stderr. With --out, the
 *       document is checkpointed to the output path during the
 *       run (every S seconds; 0 = after every point), so a killed
 *       sweep leaves a valid, resumable file. --resume loads a
 *       previous output of the same runner and replays every
 *       stored point whose configuration and axis assignment match
 *       (config_hash is cross-checked), so an interrupted Table
 *       5-8-scale grid restarts incrementally — the merged
 *       document is still byte-identical to a fresh single-shot
 *       run. --hoard DIR (or the QCARCH_HOARD environment
 *       variable) opens the persistent result cache at DIR as a
 *       read-through/write-behind layer: points already in the
 *       store are served from it, newly computed points are
 *       published to it, and the output stays byte-identical
 *       either way (docs/HOARD.md). SIGINT/SIGTERM drain the pool,
 *       write a final checkpoint, and exit 3.
 *
 *   qcarch serve <spec.json> --out PATH [--dir DIR]
 *                [--workers-expected N] [--lease-seconds S]
 *                [--shard-points K] [--poll-ms MS]
 *                [--checkpoint-seconds S] [--quiet]
 *       Coordinate the same sweep across worker processes: shards
 *       the spec into a coordination directory (default
 *       PATH.serve), leases shards to `qcarch work` processes, and
 *       merges their deltas into PATH — byte-identical to the
 *       single-shot `qcarch sweep` document. Restarting on a
 *       partial PATH resumes it. See docs/SERVE.md.
 *
 *   qcarch work --coordinator DIR [--poll-ms MS]
 *               [--backoff-max-ms MS] [--max-idle-seconds S]
 *               [--quiet]
 *       Join a coordination directory and compute shards until the
 *       coordinator marks it done.
 *
 *   qcarch hoard warm <spec.json> [--hoard DIR] [--threads N]
 *                [--quiet]
 *       Prefetch a planned grid into the hoard cache: compute (and
 *       publish) every point of the spec that is not already
 *       stored, writing no output document.
 *
 *   qcarch hoard stat|verify DIR
 *   qcarch hoard gc DIR [--max-bytes N] [--max-age-days D]
 *   qcarch hoard ingest DIR --serve SERVEDIR
 *       Inspect, integrity-scan, evict from, or ingest leftover
 *       `qcarch serve` shard deltas into a hoard store. `verify`
 *       quarantines every invalid object and exits 1 if it found
 *       any.
 *
 *   qcarch list workloads|archs|runners
 *   qcarch list fields [runner]
 *       Discover the registries a config/spec may name.
 *
 * Fault injection (CI only): --fault SPEC, or the QCARCH_FAULT
 * environment variable, arms one deterministic fault (see
 * src/serve/FaultInjector.hh). An injected crash exits 42.
 *
 * Exit codes: 0 success, 1 input error (message on stderr),
 * 2 usage, 3 interrupted by SIGINT/SIGTERM with a durable
 * checkpoint written, 42 injected fault fired.
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/Qc.hh"
#include "hoard/Hoard.hh"
#include "serve/Serve.hh"
#include "sweep/Sweep.hh"

namespace {

using namespace qc;

/** Set by the SIGINT/SIGTERM handler; every long-running command
 *  polls it through its stopRequested hook. */
volatile std::sig_atomic_t gStopRequested = 0;

void
onStopSignal(int)
{
    gStopRequested = 1;
}

void
installStopHandlers()
{
    std::signal(SIGINT, onStopSignal);
    std::signal(SIGTERM, onStopSignal);
}

bool
stopRequested()
{
    return gStopRequested != 0;
}

/**
 * A bad invocation (unknown command/flag, missing or malformed
 * option value, wrong positional count). main() reports it as one
 * line on stderr plus a one-line usage pointer and exits 2 —
 * distinct from exit 1, which is reserved for well-formed commands
 * whose *input* is bad (unreadable config, unknown runner, ...).
 */
class UsageError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

constexpr const char *kUsageLine =
    "usage: qcarch <run|sweep|serve|work|hoard|list|help> ... "
    "(run \"qcarch help\" for details)";

int
usage(std::ostream &out, int code)
{
    out << "usage:\n"
           "  qcarch run <config.json> [--out PATH]\n"
           "  qcarch sweep <spec.json> [--threads N] [--out PATH]"
           " [--quiet]\n"
           "               [--resume PREV.json]"
           " [--checkpoint-seconds S] [--hoard DIR]\n"
           "  qcarch serve <spec.json> --out PATH [--dir DIR]"
           " [--workers-expected N]\n"
           "               [--lease-seconds S] [--shard-points K]"
           " [--poll-ms MS]\n"
           "               [--checkpoint-seconds S] [--quiet]\n"
           "  qcarch work --coordinator DIR [--poll-ms MS]"
           " [--backoff-max-ms MS]\n"
           "               [--max-idle-seconds S] [--quiet]\n"
           "  qcarch hoard warm <spec.json> [--hoard DIR]"
           " [--threads N] [--quiet]\n"
           "  qcarch hoard stat|verify DIR\n"
           "  qcarch hoard gc DIR [--max-bytes N]"
           " [--max-age-days D]\n"
           "  qcarch hoard ingest DIR --serve SERVEDIR\n"
           "  qcarch list workloads|archs|runners\n"
           "  qcarch list fields [runner]\n"
           "\n"
           "exit codes: 0 ok, 1 input error, 2 usage, 3 "
           "interrupted (checkpoint written), 42 injected fault\n";
    return code;
}

/** Consume "--name value" from args; returns empty if absent. */
std::string
takeOption(std::vector<std::string> &args, const std::string &name)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == name) {
            if (i + 1 >= args.size())
                throw UsageError(name + " needs a value");
            std::string value = args[i + 1];
            args.erase(args.begin() + static_cast<long>(i),
                       args.begin() + static_cast<long>(i) + 2);
            return value;
        }
    }
    return "";
}

/**
 * Called after a command has consumed every option it knows:
 * anything left that looks like a flag is a typo ("--thread 4"
 * must fail loudly, not silently run single-threaded with a stray
 * positional), and more/fewer positionals than expected is equally
 * a bad invocation.
 */
void
expectPositionals(const std::vector<std::string> &args,
                  std::size_t count, const std::string &what)
{
    for (const std::string &arg : args) {
        if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-')
            throw UsageError("unknown flag \"" + arg + "\" for "
                             + what);
    }
    if (args.size() != count) {
        throw UsageError(what + " expects "
                         + std::to_string(count) + " argument"
                         + (count == 1 ? "" : "s") + ", got "
                         + std::to_string(args.size()));
    }
}

/** Strictly parse an integer option value: the whole token must be
 *  a base-10 integer inside [min, max], or the invocation is bad. */
std::int64_t
parseIntOption(const std::string &name, const std::string &text,
               std::int64_t min, std::int64_t max)
{
    std::int64_t value = 0;
    std::size_t used = 0;
    try {
        value = std::stoll(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != text.size() || text.empty())
        throw UsageError(name + " expects an integer, got \""
                         + text + "\"");
    if (value < min || value > max) {
        throw UsageError(name + " must be in ["
                         + std::to_string(min) + ", "
                         + std::to_string(max) + "], got " + text);
    }
    return value;
}

/** Strictly parse a non-negative, finite double option value. */
double
parseSecondsOption(const std::string &name, const std::string &text)
{
    double value = 0.0;
    std::size_t used = 0;
    try {
        value = std::stod(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (used != text.size() || text.empty()
        || !(value >= 0.0 && value <= 1e12)) {
        throw UsageError(name + " expects a non-negative number, "
                         "got \"" + text + "\"");
    }
    return value;
}

bool
takeFlag(std::vector<std::string> &args, const std::string &name)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == name) {
            args.erase(args.begin() + static_cast<long>(i));
            return true;
        }
    }
    return false;
}

/** --fault SPEC wins over QCARCH_FAULT; both parse strictly. */
FaultInjector
takeFault(std::vector<std::string> &args)
{
    const std::string spec = takeOption(args, "--fault");
    if (!spec.empty()) {
        try {
            return FaultInjector::parse(spec);
        } catch (const std::exception &e) {
            // A malformed flag value is a bad invocation (exit 2),
            // unlike a bad QCARCH_FAULT env var (exit 1: the
            // command line itself was fine).
            throw UsageError(std::string("--fault: ") + e.what());
        }
    }
    return FaultInjector::fromEnv();
}

/** --hoard DIR wins over QCARCH_HOARD; empty = no hoard. */
std::string
takeHoardDir(std::vector<std::string> &args)
{
    const std::string dir = takeOption(args, "--hoard");
    if (!dir.empty())
        return dir;
    const char *env = std::getenv("QCARCH_HOARD");
    return env ? env : "";
}

void
emit(const Json &doc, const std::string &out)
{
    if (out.empty())
        std::cout << doc.dump() << "\n";
    else
        doc.saveFile(out);
}

int
cmdRun(std::vector<std::string> args)
{
    const std::string out = takeOption(args, "--out");
    expectPositionals(args, 1, "qcarch run <config.json>");
    const ExperimentConfig config = ExperimentConfig::load(args[0]);
    emit(runExperiment(config).toJson(), out);
    return 0;
}

int
cmdSweep(std::vector<std::string> args)
{
    const std::string out = takeOption(args, "--out");
    const std::string threads = takeOption(args, "--threads");
    const std::string resumePath = takeOption(args, "--resume");
    const std::string checkpointSeconds =
        takeOption(args, "--checkpoint-seconds");
    const std::string hoardDir = takeHoardDir(args);
    const FaultInjector fault = takeFault(args);
    const bool quiet = takeFlag(args, "--quiet");
    expectPositionals(args, 1, "qcarch sweep <spec.json>");

    // Validate every option value before touching the filesystem:
    // a bad invocation must exit 2 even when the spec file is also
    // missing.
    SweepOptions options;
    if (!threads.empty())
        options.threads = static_cast<int>(
            parseIntOption("--threads", threads, 0, 1 << 16));
    if (!checkpointSeconds.empty())
        options.checkpointSeconds = parseSecondsOption(
            "--checkpoint-seconds", checkpointSeconds);

    const SweepSpec spec = SweepSpec::load(args[0]);
    std::optional<HoardStore> hoard;
    if (!hoardDir.empty()) {
        hoard.emplace(hoardDir, fault);
        options.hoard = &*hoard;
    }
    // With --out, checkpoint to the output path during the run: a
    // killed sweep leaves a valid document (finished points plus
    // "interrupted" stubs) that --resume restarts from.
    options.checkpointPath = out;
    options.stopRequested = stopRequested;

    // Load the previous output up front so an unreadable or
    // truncated file fails before any point executes (exit 1, no
    // partial output).
    Json resumeDoc;
    if (!resumePath.empty()) {
        try {
            resumeDoc = Json::loadFile(resumePath);
        } catch (const std::exception &e) {
            throw std::invalid_argument("--resume " + resumePath
                                        + ": " + e.what());
        }
        options.resume = &resumeDoc;
    }

    // Progress doubles as the fault hook: crash-at-point=K fires
    // after the K-th executed point is finished — and, because the
    // engine checkpoints before it ticks progress, after that
    // point is durably checkpointed when --checkpoint-seconds is
    // small enough.
    std::size_t executedSoFar = 0;
    options.progress = [&](const SweepProgress &p) {
        if (!p.cached && !p.resumed && !p.hoarded) {
            ++executedSoFar;
            fault.fireAtPoint(executedSoFar);
        }
        if (quiet)
            return;
        // \x1b[K erases the tail of the previous (possibly
        // longer) progress line after the carriage return.
        std::cerr << "\r[" << p.done << "/" << p.total << "] "
                  << p.point->assignment.dump(0)
                  << (p.cached ? " (cached)"
                      : p.resumed ? " (resumed)"
                      : p.hoarded ? " (hoard)"
                                  : "")
                  << "\x1b[K" << (p.done == p.total ? "\n" : "")
                  << std::flush;
    };

    installStopHandlers();
    const SweepReport report = runSweep(spec, options);
    emit(report.doc, out);
    if (!quiet) {
        std::cerr << report.points << " points ("
                  << report.executed << " executed, "
                  << report.resumed << " resumed, "
                  << report.cacheHits << " cached, "
                  << report.failed << " failed) in "
                  << report.wallSeconds << " s\n";
        if (hoard) {
            std::cerr << "hoard: " << report.hoardHits
                      << " hit(s), " << report.hoardStored
                      << " stored (" << hoardDir << ")\n";
        }
        if (report.interrupted > 0) {
            std::cerr << "interrupted: " << report.interrupted
                      << " points pending; resume with --resume "
                      << (out.empty() ? "<checkpoint>" : out)
                      << "\n";
        }
    }
    if (report.interrupted > 0)
        return kInterruptedExit;
    return report.failed == 0 ? 0 : 1;
}

int
cmdServe(std::vector<std::string> args)
{
    CoordinatorOptions options;
    options.outPath = takeOption(args, "--out");
    options.dir = takeOption(args, "--dir");
    const std::string workers =
        takeOption(args, "--workers-expected");
    const std::string lease = takeOption(args, "--lease-seconds");
    const std::string shardPoints =
        takeOption(args, "--shard-points");
    const std::string pollMs = takeOption(args, "--poll-ms");
    const std::string checkpointSeconds =
        takeOption(args, "--checkpoint-seconds");
    options.fault = takeFault(args);
    options.quiet = takeFlag(args, "--quiet");
    expectPositionals(args, 1, "qcarch serve <spec.json> --out PATH");
    if (options.outPath.empty())
        throw UsageError("qcarch serve requires --out PATH");
    if (options.dir.empty())
        options.dir = options.outPath + ".serve";
    if (!workers.empty())
        options.workersExpected = static_cast<int>(parseIntOption(
            "--workers-expected", workers, 0, 1 << 16));
    if (!lease.empty())
        options.leaseSeconds =
            parseSecondsOption("--lease-seconds", lease);
    if (!shardPoints.empty())
        options.shardPoints =
            static_cast<std::size_t>(parseIntOption(
                "--shard-points", shardPoints, 1, 1 << 30));
    if (!pollMs.empty())
        options.pollMs = static_cast<int>(
            parseIntOption("--poll-ms", pollMs, 1, 1 << 30));
    if (!checkpointSeconds.empty())
        options.checkpointSeconds = parseSecondsOption(
            "--checkpoint-seconds", checkpointSeconds);
    options.stopRequested = stopRequested;

    const SweepSpec spec = SweepSpec::load(args[0]);
    installStopHandlers();
    const CoordinatorReport report = runCoordinator(spec, options);
    if (!options.quiet) {
        std::cerr << "serve: " << report.executed << " executed, "
                  << report.resumed << " resumed, "
                  << report.duplicates << " duplicate, "
                  << report.rejected << " rejected, "
                  << (report.reclaimedExpired
                      + report.reclaimedDead)
                  << " reclaimed, " << report.failed << " failed\n";
    }
    if (report.interrupted)
        return kInterruptedExit;
    return report.failed == 0 ? 0 : 1;
}

int
cmdWork(std::vector<std::string> args)
{
    WorkerOptions options;
    options.dir = takeOption(args, "--coordinator");
    const std::string pollMs = takeOption(args, "--poll-ms");
    const std::string backoffMaxMs =
        takeOption(args, "--backoff-max-ms");
    const std::string maxIdle =
        takeOption(args, "--max-idle-seconds");
    options.fault = takeFault(args);
    options.quiet = takeFlag(args, "--quiet");
    expectPositionals(args, 0, "qcarch work --coordinator DIR");
    if (options.dir.empty())
        throw UsageError("qcarch work requires --coordinator DIR");
    if (!pollMs.empty())
        options.pollMs = static_cast<int>(
            parseIntOption("--poll-ms", pollMs, 1, 1 << 30));
    if (!backoffMaxMs.empty())
        options.backoffMaxMs = static_cast<int>(parseIntOption(
            "--backoff-max-ms", backoffMaxMs, 1, 1 << 30));
    if (!maxIdle.empty())
        options.maxIdleSeconds =
            parseSecondsOption("--max-idle-seconds", maxIdle);
    options.stopRequested = stopRequested;

    installStopHandlers();
    const WorkerReport report = runWorker(options);
    if (!options.quiet) {
        std::cerr << "work: " << report.shards << " shard(s), "
                  << report.points << " point(s), "
                  << report.abandoned << " abandoned\n";
    }
    return report.exitCode;
}

int
cmdHoard(std::vector<std::string> args)
{
    if (args.empty())
        throw UsageError(
            "qcarch hoard needs a subcommand: "
            "warm, stat, verify, gc, ingest");
    const std::string what = args[0];
    args.erase(args.begin());

    if (what == "warm") {
        // A sweep that writes no document: its entire effect is
        // the store publishes (and the accounting line).
        const std::string threads = takeOption(args, "--threads");
        const std::string hoardDir = takeHoardDir(args);
        const FaultInjector fault = takeFault(args);
        const bool quiet = takeFlag(args, "--quiet");
        expectPositionals(args, 1,
                          "qcarch hoard warm <spec.json>");
        if (hoardDir.empty())
            throw UsageError("qcarch hoard warm requires --hoard "
                             "DIR (or QCARCH_HOARD)");
        SweepOptions options;
        if (!threads.empty())
            options.threads = static_cast<int>(
                parseIntOption("--threads", threads, 0, 1 << 16));
        const SweepSpec spec = SweepSpec::load(args[0]);
        HoardStore hoard(hoardDir, fault);
        options.hoard = &hoard;
        options.stopRequested = stopRequested;
        installStopHandlers();
        const SweepReport report = runSweep(spec, options);
        if (!quiet) {
            std::cerr << "hoard: " << report.hoardHits
                      << " hit(s), " << report.hoardStored
                      << " stored (" << hoardDir << ")\n";
        }
        if (report.interrupted > 0)
            return kInterruptedExit;
        return report.failed == 0 ? 0 : 1;
    }

    if (what == "ingest") {
        const std::string serveDir = takeOption(args, "--serve");
        expectPositionals(args, 1, "qcarch hoard ingest DIR");
        if (serveDir.empty())
            throw UsageError("qcarch hoard ingest requires "
                             "--serve SERVEDIR");
        HoardStore hoard(args[0]);
        const std::size_t ingested = hoard.ingestServe(serveDir);
        std::cerr << "hoard: ingested " << ingested
                  << " point(s) from " << serveDir << "\n";
        return 0;
    }

    if (what == "gc") {
        const std::string maxBytes =
            takeOption(args, "--max-bytes");
        const std::string maxAgeDays =
            takeOption(args, "--max-age-days");
        expectPositionals(args, 1, "qcarch hoard gc DIR");
        HoardStore hoard(args[0]);
        const HoardGcReport report = hoard.gc(
            maxBytes.empty()
                ? 0
                : static_cast<std::uint64_t>(parseIntOption(
                      "--max-bytes", maxBytes, 0,
                      std::int64_t(1) << 62)),
            maxAgeDays.empty()
                ? 0.0
                : parseSecondsOption("--max-age-days",
                                     maxAgeDays));
        std::cerr << "hoard: kept " << report.kept << " ("
                  << report.keptBytes << " bytes), evicted "
                  << report.evicted << " (" << report.evictedBytes
                  << " bytes), swept " << report.tempsRemoved
                  << " temp(s)\n";
        return 0;
    }

    if (what != "stat" && what != "verify")
        throw UsageError("unknown hoard subcommand \"" + what
                         + "\"; expected warm, stat, verify, gc, "
                           "ingest");
    expectPositionals(args, 1, "qcarch hoard " + what + " DIR");

    if (what == "stat") {
        HoardStore hoard(args[0]);
        std::cout << hoard.stat().dump() << "\n";
        return 0;
    }
    if (what == "verify") {
        HoardStore hoard(args[0]);
        const HoardVerifyReport report = hoard.verify();
        std::cerr << "hoard: " << report.objects
                  << " object(s), " << report.ok << " ok, "
                  << report.quarantined << " quarantined, "
                  << report.orphanedIndexEntries
                  << " orphaned index entr"
                  << (report.orphanedIndexEntries == 1 ? "y" : "ies")
                  << " pruned\n";
        return report.quarantined == 0 ? 0 : 1;
    }
    return 0; // unreachable: the subcommand gate above covered both
}

int
cmdList(std::vector<std::string> args)
{
    if (args.empty())
        throw UsageError("qcarch list needs a subcommand: "
                         "workloads, archs, runners, fields");
    const std::string what = args[0];
    for (const std::string &arg : args) {
        if (arg.size() >= 2 && arg[0] == '-' && arg[1] == '-')
            throw UsageError("unknown flag \"" + arg
                             + "\" for qcarch list");
    }
    if (args.size() > (what == "fields" ? 2u : 1u))
        throw UsageError("too many arguments for qcarch list "
                         + what);
    if (what == "workloads") {
        WorkloadRegistry &registry = WorkloadRegistry::instance();
        for (const std::string &name : registry.names()) {
            std::cout << name << "  " << registry.description(name)
                      << "\n";
        }
        return 0;
    }
    if (what == "archs") {
        ArchRegistry &registry = ArchRegistry::instance();
        for (const std::string &key : registry.keys()) {
            std::cout << key << "  " << registry.get(key).name()
                      << "\n";
        }
        return 0;
    }
    if (what == "runners") {
        SweepRunnerRegistry &registry =
            SweepRunnerRegistry::instance();
        for (const std::string &key : registry.keys()) {
            std::cout << key << "  "
                      << registry.get(key).description() << "\n";
        }
        return 0;
    }
    if (what == "fields") {
        const std::string runner =
            args.size() > 1 ? args[1] : "experiment";
        for (const std::string &field :
             SweepRunnerRegistry::instance().get(runner).fields())
            std::cout << field << "\n";
        return 0;
    }
    throw UsageError("unknown list subcommand \"" + what
                     + "\"; expected workloads, archs, runners, "
                       "fields");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "qcarch: missing command\n"
                  << kUsageLine << "\n";
        return 2;
    }
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (command == "run")
            return cmdRun(std::move(args));
        if (command == "sweep")
            return cmdSweep(std::move(args));
        if (command == "serve")
            return cmdServe(std::move(args));
        if (command == "work")
            return cmdWork(std::move(args));
        if (command == "hoard")
            return cmdHoard(std::move(args));
        if (command == "list")
            return cmdList(std::move(args));
        if (command == "--help" || command == "help")
            return usage(std::cout, 0);
        throw UsageError("unknown command \"" + command + "\"");
    } catch (const UsageError &e) {
        std::cerr << "qcarch: " << e.what() << "\n"
                  << kUsageLine << "\n";
        return 2;
    } catch (const std::exception &e) {
        std::cerr << "qcarch " << command << ": " << e.what()
                  << "\n";
        return 1;
    }
}
