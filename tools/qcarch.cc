/**
 * @file
 * qcarch — the one-binary driver for the experiment platform:
 * every paper artifact (and any scenario the facade can express)
 * is reproducible from a JSON file and this CLI.
 *
 *   qcarch run <config.json> [--out PATH]
 *       One qc::runExperiment call; prints the full Result JSON
 *       (stdout, or --out).
 *
 *   qcarch sweep <spec.json> [--threads N] [--out PATH] [--quiet]
 *                [--resume PREV.json]
 *       Expand and execute a SweepSpec on the parallel sweep
 *       engine; writes the aggregated document (stdout, or --out).
 *       Output is bit-identical for a given spec regardless of
 *       --threads; progress goes to stderr. With --out, the
 *       document is checkpointed to the output path during the
 *       run, so a killed sweep leaves a valid, resumable file.
 *       --resume loads a previous output of the same runner and
 *       replays every stored point whose configuration and axis
 *       assignment match (config_hash is cross-checked), so an
 *       interrupted Table 5-8-scale grid restarts incrementally —
 *       the merged document is still byte-identical to a fresh
 *       single-shot run.
 *
 *   qcarch list workloads|archs|runners
 *   qcarch list fields [runner]
 *       Discover the registries a config/spec may name.
 *
 * Exit codes: 0 success, 1 input error (message on stderr),
 * 2 usage.
 */

#include <cstring>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/Qc.hh"
#include "sweep/Sweep.hh"

namespace {

using namespace qc;

int
usage(std::ostream &out, int code)
{
    out << "usage:\n"
           "  qcarch run <config.json> [--out PATH]\n"
           "  qcarch sweep <spec.json> [--threads N] [--out PATH]"
           " [--quiet] [--resume PREV.json]\n"
           "  qcarch list workloads|archs|runners\n"
           "  qcarch list fields [runner]\n";
    return code;
}

/** Consume "--name value" from args; returns empty if absent. */
std::string
takeOption(std::vector<std::string> &args, const std::string &name)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == name) {
            if (i + 1 >= args.size()) {
                throw std::invalid_argument(name
                                            + " needs a value");
            }
            std::string value = args[i + 1];
            args.erase(args.begin() + static_cast<long>(i),
                       args.begin() + static_cast<long>(i) + 2);
            return value;
        }
    }
    return "";
}

bool
takeFlag(std::vector<std::string> &args, const std::string &name)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == name) {
            args.erase(args.begin() + static_cast<long>(i));
            return true;
        }
    }
    return false;
}

void
emit(const Json &doc, const std::string &out)
{
    if (out.empty())
        std::cout << doc.dump() << "\n";
    else
        doc.saveFile(out);
}

int
cmdRun(std::vector<std::string> args)
{
    const std::string out = takeOption(args, "--out");
    if (args.size() != 1)
        return usage(std::cerr, 2);
    const ExperimentConfig config = ExperimentConfig::load(args[0]);
    emit(runExperiment(config).toJson(), out);
    return 0;
}

int
cmdSweep(std::vector<std::string> args)
{
    const std::string out = takeOption(args, "--out");
    const std::string threads = takeOption(args, "--threads");
    const std::string resumePath = takeOption(args, "--resume");
    const bool quiet = takeFlag(args, "--quiet");
    if (args.size() != 1)
        return usage(std::cerr, 2);

    const SweepSpec spec = SweepSpec::load(args[0]);
    SweepOptions options;
    if (!threads.empty())
        options.threads = std::stoi(threads);
    // With --out, checkpoint to the output path during the run: a
    // killed sweep leaves a valid document (finished points plus
    // "interrupted" stubs) that --resume restarts from.
    options.checkpointPath = out;

    // Load the previous output up front so an unreadable or
    // truncated file fails before any point executes (exit 1, no
    // partial output).
    Json resumeDoc;
    if (!resumePath.empty()) {
        try {
            resumeDoc = Json::loadFile(resumePath);
        } catch (const std::exception &e) {
            throw std::invalid_argument("--resume " + resumePath
                                        + ": " + e.what());
        }
        options.resume = &resumeDoc;
    }

    if (!quiet) {
        options.progress = [](const SweepProgress &p) {
            // \x1b[K erases the tail of the previous (possibly
            // longer) progress line after the carriage return.
            std::cerr << "\r[" << p.done << "/" << p.total << "] "
                      << p.point->assignment.dump(0)
                      << (p.cached ? " (cached)"
                                   : p.resumed ? " (resumed)" : "")
                      << "\x1b[K"
                      << (p.done == p.total ? "\n" : "")
                      << std::flush;
        };
    }

    const SweepReport report = runSweep(spec, options);
    emit(report.doc, out);
    if (!quiet) {
        std::cerr << report.points << " points ("
                  << report.executed << " executed, "
                  << report.resumed << " resumed, "
                  << report.cacheHits << " cached, "
                  << report.failed << " failed) in "
                  << report.wallSeconds << " s\n";
    }
    return report.failed == 0 ? 0 : 1;
}

int
cmdList(std::vector<std::string> args)
{
    if (args.empty())
        return usage(std::cerr, 2);
    const std::string what = args[0];
    if (what == "workloads") {
        WorkloadRegistry &registry = WorkloadRegistry::instance();
        for (const std::string &name : registry.names()) {
            std::cout << name << "  " << registry.description(name)
                      << "\n";
        }
        return 0;
    }
    if (what == "archs") {
        ArchRegistry &registry = ArchRegistry::instance();
        for (const std::string &key : registry.keys()) {
            std::cout << key << "  " << registry.get(key).name()
                      << "\n";
        }
        return 0;
    }
    if (what == "runners") {
        SweepRunnerRegistry &registry =
            SweepRunnerRegistry::instance();
        for (const std::string &key : registry.keys()) {
            std::cout << key << "  "
                      << registry.get(key).description() << "\n";
        }
        return 0;
    }
    if (what == "fields") {
        const std::string runner =
            args.size() > 1 ? args[1] : "experiment";
        for (const std::string &field :
             SweepRunnerRegistry::instance().get(runner).fields())
            std::cout << field << "\n";
        return 0;
    }
    return usage(std::cerr, 2);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 2);
    const std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (command == "run")
            return cmdRun(std::move(args));
        if (command == "sweep")
            return cmdSweep(std::move(args));
        if (command == "list")
            return cmdList(std::move(args));
        if (command == "--help" || command == "help")
            return usage(std::cout, 0);
    } catch (const std::exception &e) {
        std::cerr << "qcarch " << command << ": " << e.what()
                  << "\n";
        return 1;
    }
    std::cerr << "qcarch: unknown command \"" << command << "\"\n";
    return usage(std::cerr, 2);
}
