#!/usr/bin/env python3
"""qclint: enforce the repo's determinism & durability invariants.

The sweep/serve stack promises byte-identical output across thread
counts, resume, and coordinator/worker execution, and crash-safe
checkpoint/lease files. Those guarantees are easy to break with one
innocent-looking line — a wall-clock read in a result path, an
unordered-container iteration feeding serialized output, a plain
ofstream onto a checkpoint path. This linter scans `src/` and
`tools/` for the known footguns.

Rules (each waivable, see below):

  wall-clock    rand()/srand()/time()/gettimeofday/system_clock
                outside the clock seam (src/common/Clock.*). All
                randomness goes through qc::Rng (seeded, counted)
                and all wall-clock reads through qc::WallClock so
                tests can install a fake clock. steady_clock is
                fine: it measures intervals, not wall time.

  unordered-iteration
                Range-for over a std::unordered_map/unordered_set
                declared in the same file. Unordered iteration
                order varies across libstdc++ versions and hash
                seeds; anything it feeds into serialized output
                breaks byte-identity. Iterate a sorted view or use
                qc::Json's insertion-ordered objects instead.

  raw-io        ofstream / fopen / rename / open() in src/sweep,
                src/serve or src/hoard outside DurableFile, the
                lease protocol (src/serve/Lease.cc) and the hoard
                commit path (src/hoard/HoardStore.cc, whose
                renames are the quarantine moves the durable
                publish pattern requires). Checkpoint, delta,
                lease and hoard-object files must be written
                through writeFileDurable / Lease so a kill cannot
                leave a torn file.

  raw-exit      _exit/_Exit outside src/serve/FaultInjector.cc.
                Process death is the fault injector's job; anywhere
                else it skips destructors, flushes and the drain
                protocol.

  locale-float  stod / strtod / atof / setprecision / .precision(
                in the Json number paths (src/api/Json.*). Number
                emit/parse must use std::to_chars/from_chars so a
                host locale with ',' decimal points cannot change
                serialized bytes.

  simd-seam     intrinsics headers (immintrin.h / x86intrin.h /
                arm_neon.h) or __builtin_cpu_supports outside the
                dispatch seam (src/common/simd/SimdDispatch.cc).
                Engine code widens through the portable SimdOps
                vector-extension types; CPU-feature queries live in
                the one TU whose ISA requirements CMake keeps in
                sync with the per-width engine files, so a forced
                width can fail loudly instead of hitting SIGILL.

  module-layering
                `#include "<module>/..."` edges must follow the
                DAG declared in tools/layers.json: each module
                lists the modules it may include, transitively.
                The declared graph is cycle-checked on load (a
                cyclic layers.json is a config error, exit 2).
                Known upward edges — today the two registry
                self-registration TUs arch/Microarch.cc and
                kernels/Workloads.cc including api/ — are waived
                per-edge in layers.json with a mandatory `why`.

  parse-robustness
                .at( / asInt( in src/serve or src/hoard. The
                fromJson-style entry points on the queue, lease,
                delta, and hoard commit/fetch paths parse bytes
                other processes wrote; they must use the
                bounds-checked accessors (Json::find, asIndex,
                kind checks) that reject malformed input as
                "ignore this file". at()/asInt() throw, and an
                exception escaping a reject-whole parser turns a
                corrupt file into a crashed coordinator.

Waivers: a finding is suppressed by a comment on the same line or
the line directly above it:

    // qclint: allow(<rule>): <justification>

The justification is mandatory — a waiver without one is itself a
finding (`bad-waiver`), so every exception in the tree documents
why it is safe.

Self-test: `qclint.py --self-test` runs the rules over the fixture
files in tests/lint_fixtures/. Each fixture declares the virtual
repo path to lint it as and the findings it expects:

    // qclint-fixture: path=src/serve/Example.cc
    // qclint-fixture: expect=raw-io:9, wall-clock:12   (or: clean)

Exit codes: 0 clean / self-test passed, 1 findings / self-test
failed, 2 usage or I/O error.
"""

import argparse
import json
import os
import re
import sys

# --------------------------------------------------------------
# Rule table.
# --------------------------------------------------------------

# Matches "// qclint: allow(rule): justification". Group 1 = rule,
# group 2 = justification (possibly empty -> bad-waiver).
WAIVER_RE = re.compile(
    r"//\s*qclint:\s*allow\(([a-z-]+)\)\s*(?::\s*(.*?))?\s*$"
)

FIXTURE_RE = re.compile(r"//\s*qclint-fixture:\s*(\w+)=(.*?)\s*$")

# Strings are stripped before matching so `"time(0)"` in a message
# or a path literal cannot fire a rule; comments are kept so
# fixtures can't accidentally hide patterns, but every pattern
# below only matches code-shaped text.
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


class Rule:
    def __init__(self, name, pattern, dirs, whitelist, why):
        self.name = name
        self.pattern = (
            re.compile(pattern) if pattern is not None else None
        )
        # Path prefixes (relative, '/'-separated) the rule applies
        # to; None means the whole scanned tree.
        self.dirs = dirs
        # Exact relative paths exempt from the rule (the blessed
        # implementation seam the rule funnels everyone through).
        self.whitelist = set(whitelist)
        self.why = why

    def applies_to(self, path):
        if path in self.whitelist:
            return False
        if self.dirs is None:
            return True
        return any(path.startswith(d) for d in self.dirs)


RULES = [
    Rule(
        "wall-clock",
        r"(?:\bsrand\s*\(|\brand\s*\(\s*\)|\bgettimeofday\b"
        r"|system_clock\b|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\))",
        None,
        ["src/common/Clock.cc", "src/common/Clock.hh"],
        "wall-clock/ambient randomness outside the qc::WallClock / "
        "qc::Rng seams breaks reproducibility and fake-clock tests",
    ),
    Rule(
        "unordered-iteration",
        None,  # handled specially: needs the declaration pass
        None,
        [],
        "unordered container iteration order is not stable across "
        "hosts; it must not feed serialized output",
    ),
    Rule(
        "raw-io",
        r"(?:\bofstream\b|\bfopen\s*\(|\brename\s*\(|\bopen\s*\(\s*\w"
        r"|\bcreat\s*\()",
        ["src/sweep/", "src/serve/", "src/hoard/"],
        ["src/serve/Lease.cc", "src/hoard/HoardStore.cc"],
        "checkpoint/delta/lease/hoard-object files must go through "
        "writeFileDurable, the Lease protocol or the hoard commit "
        "path so a crash cannot leave a torn file",
    ),
    Rule(
        "raw-exit",
        r"(?:\b_exit\s*\(|\b_Exit\s*\()",
        None,
        ["src/serve/FaultInjector.cc"],
        "abrupt process death outside the fault injector skips "
        "flushes and the drain protocol",
    ),
    Rule(
        "locale-float",
        r"(?:\bstod\s*\(|\bstrtod\s*\(|\batof\s*\(|\bsetprecision\b"
        r"|\.precision\s*\()",
        ["src/api/Json"],
        [],
        "locale-dependent float formatting changes serialized "
        "bytes; use std::to_chars/std::from_chars",
    ),
    Rule(
        "simd-seam",
        r"(?:\bimmintrin\.h\b|\bx86intrin\.h\b|\barm_neon\.h\b"
        r"|\b__builtin_cpu_supports\b)",
        None,
        ["src/common/simd/SimdDispatch.cc"],
        "intrinsics headers and CPU-feature queries belong to the "
        "SIMD dispatch seam (src/common/simd/SimdDispatch.cc); "
        "engine code uses the portable SimdOps types so every "
        "width stays bit-identical and buildable everywhere",
    ),
    Rule(
        "module-layering",
        None,  # handled specially: needs tools/layers.json
        None,
        [],
        "cross-module includes must follow the DAG declared in "
        "tools/layers.json; an upward edge needs a per-edge waiver "
        "there with a justification",
    ),
    Rule(
        "parse-robustness",
        r"(?:\.at\s*\(|\basInt\s*\()",
        ["src/serve/", "src/hoard/"],
        [],
        "commit/fetch-path parsers read bytes other processes "
        "wrote; use the bounds-checked Json::find/asIndex "
        "accessors — at()/asInt() throw, which escapes the "
        "reject-whole fromJson contract",
    ),
]

# Matched against the raw line (not the string-stripped form the
# pattern rules see — stripping would eat the include path itself).
MODULE_INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([a-z]+)/')

# Loaded from tools/layers.json by load_layers(); None until then
# (and in that state the module-layering rule is inert, which keeps
# unit-style callers of lint_lines working without a repo root).
LAYERS = None


def path_module(path):
    """Map a scanned relative path to its module name, or None."""
    if path.startswith("tools/"):
        return "tools"
    parts = path.split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def load_layers(root):
    """Parse tools/layers.json into the LAYERS global.

    Validates the declared module graph: every edge target must be
    a declared module, the graph must be acyclic, and every waiver
    must carry from/to/file and a non-empty why. Any violation is
    a configuration error (exit 2) — the layering contract itself
    must never be in a broken state.
    """
    global LAYERS
    path = os.path.join(root, "tools", "layers.json")

    def die(message):
        print("qclint: %s: %s" % (path, message), file=sys.stderr)
        sys.exit(2)

    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        die("cannot load: %s" % e)
    modules = data.get("modules")
    if not isinstance(modules, dict) or not modules:
        die("missing or empty `modules` table")
    for mod, deps in modules.items():
        for dep in deps:
            if dep not in modules:
                die("module `%s` allows unknown module `%s`"
                    % (mod, dep))

    # Depth-first cycle check + transitive closure in one walk.
    closure = {}

    def close(mod, trail):
        if mod in closure:
            return closure[mod]
        if mod in trail:
            cycle = trail[trail.index(mod):] + [mod]
            die("declared layering contains a cycle: %s"
                % " -> ".join(cycle))
        reach = set()
        for dep in modules[mod]:
            reach.add(dep)
            reach |= close(dep, trail + [mod])
        closure[mod] = reach
        return reach

    for mod in sorted(modules):
        close(mod, [])

    waived_edges = set()
    for waiver in data.get("waivers", []):
        for key in ("from", "to", "file", "why"):
            if not waiver.get(key):
                die("waiver %r needs a non-empty `%s`"
                    % (waiver, key))
        waived_edges.add(
            (waiver["from"], waiver["to"], waiver["file"])
        )
    LAYERS = {
        "modules": modules,
        "closure": closure,
        "waived_edges": waived_edges,
    }


UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s+"
    r"(\w+)\s*[;{(=]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;)]*?:\s*(\w+)\s*\)")


class Finding:
    def __init__(self, path, line, rule, text):
        self.path = path
        self.line = line
        self.rule = rule
        self.text = text

    def __str__(self):
        return "%s:%d: [%s] %s" % (
            self.path,
            self.line,
            self.rule,
            self.text.strip(),
        )


def parse_waivers(lines):
    """Map line number -> (rule, justification-or-None)."""
    waivers = {}
    for i, line in enumerate(lines, start=1):
        m = WAIVER_RE.search(line)
        if m:
            waivers[i] = (m.group(1), m.group(2) or "")
    return waivers


def lint_lines(path, lines):
    """Run every applicable rule over one file's lines."""
    findings = []
    waivers = parse_waivers(lines)
    used = set()

    def waived(lineno, rule):
        for at in (lineno, lineno - 1):
            w = waivers.get(at)
            if w and w[0] == rule:
                used.add(at)
                if not w[1]:
                    findings.append(
                        Finding(
                            path,
                            at,
                            "bad-waiver",
                            "waiver for '%s' has no justification "
                            "(write `// qclint: allow(%s): <why>`)"
                            % (rule, rule),
                        )
                    )
                return True
        return False

    # Pass 1: collect names of unordered containers declared in
    # this file, for the iteration rule.
    unordered_rule = next(
        r for r in RULES if r.name == "unordered-iteration"
    )
    unordered_names = set()
    if unordered_rule.applies_to(path):
        for line in lines:
            code = STRING_RE.sub('""', line)
            for m in UNORDERED_DECL_RE.finditer(code):
                unordered_names.add(m.group(1))

    # Layering context for this file (None disables the rule: no
    # layers.json loaded, or the path is outside any module).
    file_module = path_module(path)
    layer_reach = None
    if LAYERS is not None and file_module in LAYERS["closure"]:
        layer_reach = LAYERS["closure"][file_module]

    def layering_finding(i, line):
        m = MODULE_INCLUDE_RE.match(line)
        if not m:
            return None
        target = m.group(1)
        if (
            target == file_module
            or target not in LAYERS["modules"]
            or target in layer_reach
        ):
            return None
        if (file_module, target, path) in LAYERS["waived_edges"]:
            return None
        if waived(i, "module-layering"):
            return None
        return Finding(
            path,
            i,
            "module-layering",
            "module `%s` may not include `%s/` (allowed: %s); add "
            "the edge or a per-edge waiver to tools/layers.json"
            % (
                file_module,
                target,
                ", ".join(sorted(layer_reach)) or "nothing",
            ),
        )

    # Pass 2: per-line pattern rules.
    for i, line in enumerate(lines, start=1):
        if layer_reach is not None:
            f = layering_finding(i, line)
            if f:
                findings.append(f)
        code = STRING_RE.sub('""', line)
        stripped = code.lstrip()
        if stripped.startswith("//") or stripped.startswith("*"):
            continue
        for rule in RULES:
            if rule.pattern is None or not rule.applies_to(path):
                continue
            m = rule.pattern.search(code)
            if m and not waived(i, rule.name):
                findings.append(
                    Finding(
                        path,
                        i,
                        rule.name,
                        "`%s`: %s" % (m.group(0).strip(), rule.why),
                    )
                )
        if unordered_names and unordered_rule.applies_to(path):
            m = RANGE_FOR_RE.search(code)
            if (
                m
                and m.group(1) in unordered_names
                and not waived(i, "unordered-iteration")
            ):
                findings.append(
                    Finding(
                        path,
                        i,
                        "unordered-iteration",
                        "range-for over unordered container `%s`: %s"
                        % (m.group(1), unordered_rule.why),
                    )
                )

    # Unused waivers rot: they advertise an exception that no
    # longer exists and mask the rule if the pattern comes back in
    # a different spot.
    for at, (rule, _) in sorted(waivers.items()):
        if at not in used:
            findings.append(
                Finding(
                    path,
                    at,
                    "bad-waiver",
                    "waiver for '%s' matches no finding on this or "
                    "the next line; delete it" % rule,
                )
            )
    return findings


def lint_file(root, relpath):
    try:
        with open(
            os.path.join(root, relpath), encoding="utf-8"
        ) as f:
            lines = f.read().splitlines()
    except OSError as e:
        print("qclint: cannot read %s: %s" % (relpath, e), file=sys.stderr)
        sys.exit(2)
    return lint_lines(relpath.replace(os.sep, "/"), lines)


def scanned_files(root):
    for top in ("src", "tools"):
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith((".cc", ".hh", ".cpp", ".hpp")):
                    yield os.path.relpath(
                        os.path.join(dirpath, name), root
                    )


# --------------------------------------------------------------
# Self-test over tests/lint_fixtures/.
# --------------------------------------------------------------


def parse_fixture(lines):
    """Return (virtual_path, expected set of 'rule:line')."""
    path, expect = None, None
    for line in lines:
        m = FIXTURE_RE.search(line)
        if not m:
            continue
        key, value = m.group(1), m.group(2)
        if key == "path":
            path = value
        elif key == "expect":
            expect = set()
            if value.strip() != "clean":
                for token in re.split(r"[,\s]+", value.strip()):
                    if token:
                        expect.add(token)
    return path, expect


def self_test(root):
    fixtures_dir = os.path.join(root, "tests", "lint_fixtures")
    if not os.path.isdir(fixtures_dir):
        print("qclint: missing %s" % fixtures_dir, file=sys.stderr)
        return 2
    names = sorted(
        n for n in os.listdir(fixtures_dir) if n.endswith(".cc")
    )
    if not names:
        print("qclint: no fixtures found", file=sys.stderr)
        return 2
    failures = 0
    for name in names:
        with open(
            os.path.join(fixtures_dir, name), encoding="utf-8"
        ) as f:
            lines = f.read().splitlines()
        vpath, expect = parse_fixture(lines)
        if vpath is None or expect is None:
            print(
                "FAIL %s: missing `// qclint-fixture: path=` or "
                "`expect=` header" % name
            )
            failures += 1
            continue
        got = {
            "%s:%d" % (f.rule, f.line)
            for f in lint_lines(vpath, lines)
        }
        if got == expect:
            print("ok   %s (%d findings)" % (name, len(got)))
        else:
            failures += 1
            print("FAIL %s (as %s)" % (name, vpath))
            for item in sorted(expect - got):
                print("  missing expected %s" % item)
            for item in sorted(got - expect):
                print("  unexpected       %s" % item)
    print(
        "qclint self-test: %d/%d fixtures passed"
        % (len(names) - failures, len(names))
    )
    return 1 if failures else 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Lint src/ and tools/ for determinism and "
        "durability invariant violations."
    )
    parser.add_argument(
        "--root",
        default=os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        ),
        help="repository root (default: the parent of tools/)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the rules over tests/lint_fixtures/ and check "
        "each fixture's expected findings",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print("%-20s %s" % (rule.name, rule.why))
            for path in sorted(rule.whitelist):
                print("%-20s   whitelisted: %s" % ("", path))
        return 0

    load_layers(args.root)

    if args.self_test:
        return self_test(args.root)

    findings = []
    count = 0
    for relpath in scanned_files(args.root):
        count += 1
        findings.extend(lint_file(args.root, relpath))
    for finding in findings:
        print(finding)
    if findings:
        print(
            "qclint: %d finding(s) in %d files scanned"
            % (len(findings), count)
        )
        return 1
    print("qclint: clean (%d files scanned)" % count)
    return 0


if __name__ == "__main__":
    sys.exit(main())
