#!/usr/bin/env bash
# Kill-matrix gate for the sweep service (docs/SERVE.md).
#
# Runs `qcarch serve` + workers over specs/ci_smoke.json with a
# deterministic fault injected at each protocol point the recovery
# story claims to survive — worker killed before its commit
# rename, after it, mid-rename (torn delta), a worker whose
# heartbeat goes stale, a coordinator killed between checkpoints,
# and a drained coordinator — then restarts the survivors and
# requires the merged document to be byte-identical (cmp) to a
# single-shot `qcarch sweep` of the same spec. Log assertions pin
# the recovery path taken: the expired lease is reclaimed exactly
# once, committed points are never re-executed (no idempotent-
# duplicate merges), and no delta is ever rejected as conflicting.
#
# Usage: tools/kill_matrix.sh [QCARCH_BINARY [SPEC]]
# Exits non-zero on the first failed leg.

set -u

QCARCH=${1:-./build/qcarch}
SPEC=${2:-specs/ci_smoke.json}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/qc_kill_matrix.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

FAULT_EXIT=42        # FaultInjector::kExitCode
INTERRUPTED_EXIT=3   # drained with a durable checkpoint

fail() {
    echo "kill_matrix: FAIL: $*" >&2
    exit 1
}

# Shared serve/worker knobs: short lease so stale-heartbeat legs
# resolve quickly, per-point shards so every fault leg exercises
# the merge path repeatedly, and idle bounds so a wedged leg times
# out instead of hanging CI.
SERVE_ARGS=(--workers-expected 2 --shard-points 1 --lease-seconds 1
            --poll-ms 50 --checkpoint-seconds 0 --quiet)
WORK_ARGS=(--poll-ms 25 --backoff-max-ms 200 --max-idle-seconds 60
           --quiet)

run_worker() { # run_worker DIR [EXTRA_ARGS...]
    local dir=$1
    shift
    timeout 120 "$QCARCH" work --coordinator "$dir" \
        "${WORK_ARGS[@]}" "$@"
}

assert_clean_log() { # assert_clean_log LOGFILE
    if grep -q "already merged; idempotent" "$1"; then
        fail "committed points were re-executed ($1):" \
             "$(grep 'already merged' "$1")"
    fi
    if grep -q "rejected conflicting delta" "$1"; then
        fail "a conflicting delta appeared ($1)"
    fi
}

echo "== golden single-shot document"
"$QCARCH" sweep "$SPEC" --threads 2 --quiet \
    --out "$WORK/golden.json" || fail "golden sweep failed"

# ----------------------------------------------------------------
# Worker fault legs: one faulted worker (must die with the fault
# exit code), then a clean worker finishes the sweep.
# ----------------------------------------------------------------
for fault in crash-before-commit crash-after-commit torn-delta; do
    echo "== worker fault: $fault"
    dir=$WORK/$fault
    out=$dir/out.json
    mkdir -p "$dir"
    timeout 120 "$QCARCH" serve "$SPEC" --out "$out" \
        --dir "$dir/serve" "${SERVE_ARGS[@]}" &
    serve_pid=$!

    run_worker "$dir/serve" --fault "$fault"
    rc=$?
    [ "$rc" -eq "$FAULT_EXIT" ] \
        || fail "$fault worker exited $rc, wanted $FAULT_EXIT"

    run_worker "$dir/serve" || fail "$fault: clean worker failed"
    wait "$serve_pid" || fail "$fault: coordinator failed"
    cmp "$WORK/golden.json" "$out" \
        || fail "$fault: document differs from single-shot"
    assert_clean_log "$dir/serve/log"
done

# crash-before-commit leaves a dead owner holding an uncommitted
# lease: the dead-PID fast path must have reclaimed it.
grep -q "reclaimed dead owner" "$WORK/crash-before-commit/serve/log" \
    || fail "crash-before-commit: no dead-owner reclaim logged"
# torn-delta must be detected, rejected and recovered from.
grep -q "rejected torn delta" "$WORK/torn-delta/serve/log" \
    || fail "torn-delta: no torn-delta rejection logged"

# ----------------------------------------------------------------
# Stale heartbeat: an alive worker stops renewing; its lease must
# be reclaimed exactly once and the abandoned shard recomputed.
# ----------------------------------------------------------------
echo "== worker fault: stale-heartbeat"
dir=$WORK/stale
out=$dir/out.json
mkdir -p "$dir"
timeout 120 "$QCARCH" serve "$SPEC" --out "$out" \
    --dir "$dir/serve" "${SERVE_ARGS[@]}" &
serve_pid=$!
run_worker "$dir/serve" --fault stale-heartbeat &
stale_pid=$!
# The fault engages on the stale worker's first checkout; hold the
# clean worker back until that checkout exists, or a fast clean
# worker could drain the whole queue first and nothing would expire.
for _ in $(seq 1 200); do
    ls "$dir/serve/leases/"*.lease >/dev/null 2>&1 && break
    sleep 0.05
done
ls "$dir/serve/leases/"*.lease >/dev/null 2>&1 \
    || fail "stale: stale worker never checked out a shard"
run_worker "$dir/serve" || fail "stale: clean worker failed"
wait "$stale_pid" || fail "stale: stale worker failed to drain"
wait "$serve_pid" || fail "stale: coordinator failed"
cmp "$WORK/golden.json" "$out" \
    || fail "stale: document differs from single-shot"
assert_clean_log "$dir/serve/log"
reclaims=$(grep -c "reclaimed expired lease" "$dir/serve/log")
[ "$reclaims" -eq 1 ] \
    || fail "stale: expired lease reclaimed $reclaims times, wanted 1"

# ----------------------------------------------------------------
# Coordinator crash: die (durably checkpointed) after 2 merged
# points; the restarted coordinator must resume the checkpoint,
# recover any leftover deltas and finish without re-execution.
# ----------------------------------------------------------------
echo "== coordinator fault: crash-at-point=2 + restart"
dir=$WORK/coord-crash
out=$dir/out.json
mkdir -p "$dir"
run_worker "$dir/serve" &
worker_pid=$!
timeout 120 "$QCARCH" serve "$SPEC" --out "$out" \
    --dir "$dir/serve" "${SERVE_ARGS[@]}" --fault crash-at-point=2
rc=$?
[ "$rc" -eq "$FAULT_EXIT" ] \
    || fail "faulted coordinator exited $rc, wanted $FAULT_EXIT"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out" \
    || fail "coord-crash: crashed coordinator left an invalid checkpoint"
timeout 120 "$QCARCH" serve "$SPEC" --out "$out" \
    --dir "$dir/serve" "${SERVE_ARGS[@]}" \
    || fail "restarted coordinator failed"
wait "$worker_pid" || fail "coord-crash: worker failed"
cmp "$WORK/golden.json" "$out" \
    || fail "coord-crash: document differs from single-shot"
assert_clean_log "$dir/serve/log"
grep -q "resumed" "$dir/serve/log" \
    || fail "coord-crash: restart did not resume the checkpoint"

# ----------------------------------------------------------------
# Drained coordinator: SIGTERM must write a final checkpoint, mark
# the directory interrupted (exit 3), and restart cleanly.
# ----------------------------------------------------------------
echo "== coordinator drain: SIGTERM + restart"
dir=$WORK/coord-drain
out=$dir/out.json
mkdir -p "$dir"
timeout 120 "$QCARCH" serve "$SPEC" --out "$out" \
    --dir "$dir/serve" "${SERVE_ARGS[@]}" &
serve_pid=$!
sleep 0.5
kill -TERM "$serve_pid"
wait "$serve_pid"
rc=$?
[ "$rc" -eq "$INTERRUPTED_EXIT" ] \
    || fail "drained coordinator exited $rc, wanted $INTERRUPTED_EXIT"
[ "$(cat "$dir/serve/done")" = "interrupted" ] \
    || fail "drain: done marker is not 'interrupted'"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$out" \
    || fail "drain: checkpoint is not valid JSON"
# The restarting coordinator removes the stale done marker itself,
# but a worker launched in the same instant can read it first and
# exit before any work exists. Clear it up front so the leg tests
# recovery, not launch-ordering.
rm -f "$dir/serve/done"
timeout 120 "$QCARCH" serve "$SPEC" --out "$out" \
    --dir "$dir/serve" "${SERVE_ARGS[@]}" &
serve_pid=$!
run_worker "$dir/serve" || fail "drain: worker failed"
wait "$serve_pid" || fail "drain: restarted coordinator failed"
cmp "$WORK/golden.json" "$out" \
    || fail "drain: document differs from single-shot"
assert_clean_log "$dir/serve/log"

# ----------------------------------------------------------------
# Hoard publish crashes (docs/HOARD.md): a sweep killed around the
# store's commit rename must never leave a readable-but-wrong
# object. Before the rename: no object may be visible (only an
# ignored temp). After it: exactly the published objects, all
# valid. Either way `hoard verify` must find nothing to quarantine
# and the recovery sweep must be byte-identical to single-shot.
# ----------------------------------------------------------------
for fault in crash-before-hoard-publish crash-after-hoard-publish; do
    echo "== hoard fault: $fault"
    dir=$WORK/hoard-$fault
    mkdir -p "$dir"
    QCARCH_FAULT=$fault timeout 120 "$QCARCH" sweep "$SPEC" \
        --hoard "$dir/store" --threads 1 --quiet \
        --out "$dir/out.json"
    rc=$?
    [ "$rc" -eq "$FAULT_EXIT" ] \
        || fail "$fault sweep exited $rc, wanted $FAULT_EXIT"
    "$QCARCH" hoard verify "$dir/store" 2> "$dir/verify.log" \
        || fail "$fault: killed run left an invalid object:" \
                "$(cat "$dir/verify.log")"
    timeout 120 "$QCARCH" sweep "$SPEC" --hoard "$dir/store" \
        --threads 2 --quiet --out "$dir/out.json" \
        || fail "$fault: recovery sweep failed"
    cmp "$WORK/golden.json" "$dir/out.json" \
        || fail "$fault: document differs from single-shot"
done
# The pre-rename crash must have published nothing: its first
# recovery point cannot be a hoard hit.
objects=$(find "$WORK/hoard-crash-before-hoard-publish/store/objects" \
    -name '*.json' | wc -l)
[ "$objects" -eq 4 ] \
    || fail "crash-before: expected 4 objects after recovery, got $objects"
# The post-rename crash published exactly one object, which the
# recovery run must have reused (never recomputed): gc sweeping the
# leftover temp from the pre-rename leg proves the temp was real.
temps=$("$QCARCH" hoard gc \
    "$WORK/hoard-crash-before-hoard-publish/store" 2>&1 \
    | grep -o 'swept [0-9]* temp' | grep -o '[0-9]*')
[ "$temps" -eq 1 ] \
    || fail "crash-before: expected 1 leftover publish temp, got $temps"

echo "kill_matrix: all legs passed (documents byte-identical to" \
     "single-shot; expired lease reclaimed exactly once; no" \
     "committed point re-executed; no killed hoard publish left" \
     "a readable-but-wrong object)"
