#!/usr/bin/env python3
"""Check intra-repository markdown links.

Walks every *.md file in the repository (skipping build trees and
VCS metadata), extracts inline links and images, and verifies that
every relative target resolves to an existing file or directory.
External links (http/https/mailto) and pure in-page anchors are
skipped — this guards the docs site's internal wiring, not the
internet.

Exit status: 0 when all links resolve, 1 otherwise (each broken
link is reported as file:line: target).

Usage: tools/check_md_links.py [repo-root]
"""

import os
import re
import sys

SKIP_DIR_NAMES = {".git", "node_modules", "__pycache__"}


def skip_dir(name):
    # Any build tree (build/, build-asan/, cmake-build-debug/, ...)
    # may contain vendored markdown whose links are not ours to fix.
    return (name in SKIP_DIR_NAMES or name.startswith("build")
            or name.startswith("cmake-build"))

# Inline links/images: [text](target) / ![alt](target). Targets may
# carry a #fragment and an optional "title".
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

# Fenced code blocks must not contribute false links.
FENCE_RE = re.compile(r"^\s*(```|~~~)")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if not skip_dir(d)]
        for name in sorted(filenames):
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    broken = []
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(
                        ("http://", "https://", "mailto:", "#")):
                    continue
                resolved = os.path.normpath(os.path.join(
                    os.path.dirname(path),
                    target.split("#", 1)[0]))
                if not os.path.exists(resolved):
                    rel = os.path.relpath(path, root)
                    broken.append((rel, lineno, target))
    return broken


def main():
    root = os.path.abspath(
        sys.argv[1] if len(sys.argv) > 1 else
        os.path.join(os.path.dirname(__file__), os.pardir))
    files = list(markdown_files(root))
    broken = []
    for path in files:
        broken.extend(check_file(path, root))
    for rel, lineno, target in broken:
        print(f"{rel}:{lineno}: broken link -> {target}")
    print(f"checked {len(files)} markdown files, "
          f"{len(broken)} broken link(s)")
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main())
