/**
 * @file
 * Fuzz the hoard store's on-disk trust boundary. Two sections:
 * a store version marker (ROOT/hoard.json) and an object file
 * body planted at the key the fixed probe config resolves to.
 *
 *  - A hostile marker must either open (it really is this
 *    version) or throw std::invalid_argument — nothing else;
 *  - fetch() over a hostile object must never throw: it either
 *    misses (and the object is quarantined out of the store) or
 *    hits with exactly the stored result — in which case the
 *    object survived full validation and a second fetch agrees.
 */

#include <filesystem>
#include <stdexcept>
#include <string>

#include "api/Json.hh"
#include "fuzz/FuzzUtil.hh"
#include "hoard/HoardStore.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const auto sections = qcfuzz::splitSections(data, size, 2);
    const qcfuzz::TempDir tmp;
    const std::string root = tmp.path() + "/hoard";

    if (!sections[0].empty()) {
        std::filesystem::create_directories(root);
        qcfuzz::writeFile(root + "/hoard.json", sections[0]);
    }
    qc::Json config = qc::Json::object();
    config.set("workload", "qrca");
    config.set("bits", 8);

    try {
        qc::HoardStore store(root);

        const std::string key =
            qc::HoardStore::keyFor("experiment", config);
        const std::string objectPath = store.objectPath(key);
        std::filesystem::create_directories(
            std::filesystem::path(objectPath).parent_path());
        qcfuzz::writeFile(objectPath, sections[1]);

        qc::Json result;
        const bool hit =
            store.fetch("experiment", config, result);
        if (hit) {
            // Only a fully valid object may hit — and validity is
            // stable: the same fetch again returns the same bytes.
            qc::Json again;
            QC_FUZZ_ASSERT(
                store.fetch("experiment", config, again),
                "hit followed by miss with no intervening write");
            QC_FUZZ_ASSERT(again.dump(0) == result.dump(0),
                           "two fetches returned different results");
        } else {
            // A miss on a planted object must have quarantined it:
            // the poisoned file may not stay on the hit path.
            QC_FUZZ_ASSERT(
                !std::filesystem::exists(objectPath),
                "invalid object left in place after a miss");
            qc::Json again;
            QC_FUZZ_ASSERT(
                !store.fetch("experiment", config, again),
                "miss followed by hit with no intervening write");
        }
    } catch (const std::invalid_argument &) {
        return 0; // marker rejected cleanly
    }
    return 0;
}
