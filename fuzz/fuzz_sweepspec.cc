/**
 * @file
 * Fuzz SweepSpec parsing and expansion: a hostile spec document
 * must either throw std::invalid_argument (unknown keys/runners/
 * fields, zip mismatches, grids past kMaxSweepPoints) or expand to
 * exactly points() points — never overflow, never OOM, never
 * produce a spec whose toJson() fails to reparse.
 */

#include <stdexcept>
#include <string>

#include "api/Json.hh"
#include "fuzz/FuzzUtil.hh"
#include "sweep/SweepSpec.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    qc::Json doc;
    try {
        doc = qc::Json::parse(qcfuzz::toString(data, size));
    } catch (const std::invalid_argument &) {
        return 0;
    }
    qc::SweepSpec spec;
    try {
        spec = qc::SweepSpec::fromJson(doc);
    } catch (const std::invalid_argument &) {
        return 0; // rejected cleanly
    }

    std::size_t total = 0;
    try {
        total = spec.points();
    } catch (const std::invalid_argument &) {
        return 0; // over the expansion cap: the guard fired
    }
    // Materialize only tame grids: the cap bounds the worst case,
    // but per-iteration time still matters under the fuzzer.
    if (total <= 4096) {
        const auto points = spec.expand();
        QC_FUZZ_ASSERT(points.size() == total,
                       "expand() size disagrees with points()");
    }
    // An accepted spec's serialization is itself a valid spec with
    // the same shape.
    qc::SweepSpec again;
    try {
        again = qc::SweepSpec::fromJson(spec.toJson());
    } catch (const std::invalid_argument &) {
        QC_FUZZ_ASSERT(false, "toJson() of an accepted spec was "
                              "rejected by fromJson()");
    }
    QC_FUZZ_ASSERT(again.points() == total,
                   "toJson() round-trip changed the point count");
    return 0;
}
