/**
 * @file
 * Replay driver for the fuzz harnesses when libFuzzer is
 * unavailable (GCC builds, and the normal Release build's
 * fuzz_corpus_replay ctest entries). Each argument is a corpus
 * file — or a directory of them, walked in sorted order so replay
 * is deterministic — fed once to LLVMFuzzerTestOneInput. A
 * violated harness property aborts exactly as it would under
 * libFuzzer, after naming the input being replayed.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

bool
replayFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::fprintf(stderr, "replay %s (%zu bytes)\n", path.c_str(),
                 bytes.size());
    LLVMFuzzerTestOneInput(
        reinterpret_cast<const std::uint8_t *>(bytes.data()),
        bytes.size());
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <corpus-file-or-dir>...\n", argv[0]);
        return 2;
    }
    std::size_t replayed = 0;
    for (int i = 1; i < argc; ++i) {
        std::error_code ec;
        if (fs::is_directory(argv[i], ec)) {
            std::vector<std::string> files;
            for (const fs::directory_entry &entry :
                 fs::directory_iterator(argv[i], ec)) {
                if (entry.is_regular_file(ec))
                    files.push_back(entry.path().string());
            }
            std::sort(files.begin(), files.end());
            for (const std::string &file : files) {
                if (!replayFile(file))
                    return 1;
                ++replayed;
            }
        } else {
            if (!replayFile(argv[i]))
                return 1;
            ++replayed;
        }
    }
    std::fprintf(stderr, "replayed %zu input(s), all clean\n",
                 replayed);
    return 0;
}
