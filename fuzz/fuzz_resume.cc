/**
 * @file
 * Fuzz resume-document replay: a hostile --resume file against a
 * fixed known-good spec must either be rejected with
 * std::invalid_argument or replay cleanly — and whatever it
 * replayed, the assembler's document() must still serialize. The
 * matching logic (canonical config + assignment + config_hash
 * cross-check) is exactly the code a corrupted checkpoint hits on
 * restart.
 */

#include <stdexcept>
#include <string>

#include "api/Json.hh"
#include "fuzz/FuzzUtil.hh"
#include "sweep/SweepPlan.hh"
#include "sweep/SweepSpec.hh"

namespace {

const qc::SweepSpec &
fixedSpec()
{
    static const qc::SweepSpec spec = qc::SweepSpec::fromJson(
        qc::Json::parse(R"({
            "name": "fuzz_resume",
            "runner": "experiment",
            "base": {"workload": "qrca", "bits": 8},
            "axes": [
                {"field": "schedule",
                 "values": ["speed-of-data", "arch"]},
                {"field": "codeLevel", "values": [1, 2]}
            ]
        })"));
    return spec;
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    qc::Json doc;
    try {
        doc = qc::Json::parse(qcfuzz::toString(data, size));
    } catch (const std::invalid_argument &) {
        return 0;
    }
    qc::SweepAssembler assembler(fixedSpec());
    const std::size_t pendingBefore = assembler.pending().size();
    try {
        assembler.applyResume(doc);
    } catch (const std::invalid_argument &) {
        return 0; // rejected cleanly
    }
    const std::size_t pendingAfter = assembler.pending().size();
    QC_FUZZ_ASSERT(pendingAfter <= pendingBefore,
                   "applyResume grew the pending set");
    QC_FUZZ_ASSERT(assembler.resumedCount()
                       == pendingBefore - pendingAfter,
                   "resumed count disagrees with pending shrink");
    // Whatever was adopted, the document must still serialize and
    // reparse (it is about to become the next checkpoint).
    const std::string out = assembler.document().dump(2);
    (void)qc::Json::parse(out);
    return 0;
}
