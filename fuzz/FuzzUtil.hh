/**
 * @file
 * Shared plumbing for the fuzz harnesses (fuzz/fuzz_*.cc): a
 * temp-directory sandbox for harnesses that exercise on-disk
 * surfaces (lease files, hoard objects), and a structured splitter
 * that carves one fuzz input into several independent sections so
 * a single harness can drive a multi-file protocol surface.
 *
 * Harnesses signal a violated property with QC_FUZZ_ASSERT, which
 * aborts — both libFuzzer and the standalone replay driver
 * (StandaloneFuzzMain.cc) report the crashing input. Expected
 * rejections of malformed input (std::invalid_argument from a
 * parser) are *not* findings; harnesses catch those and return.
 */

#ifndef QC_FUZZ_FUZZ_UTIL_HH
#define QC_FUZZ_FUZZ_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace qcfuzz {

#define QC_FUZZ_ASSERT(cond, what)                                  \
    do {                                                            \
        if (!(cond)) {                                              \
            std::fprintf(stderr, "fuzz property violated: %s\n",    \
                         what);                                     \
            std::abort();                                           \
        }                                                           \
    } while (0)

/**
 * A fresh directory under TMPDIR, recursively removed on scope
 * exit. Harnesses that mutate store/protocol state create one per
 * input so no state leaks between fuzzer iterations.
 */
class TempDir
{
  public:
    TempDir()
    {
        const char *base = std::getenv("TMPDIR");
        std::string pattern = std::string(base ? base : "/tmp")
                              + "/qcfuzz.XXXXXX";
        std::vector<char> buf(pattern.begin(), pattern.end());
        buf.push_back('\0');
        if (!::mkdtemp(buf.data())) {
            std::perror("mkdtemp");
            std::abort();
        }
        path_ = buf.data();
    }

    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }

    TempDir(const TempDir &) = delete;
    TempDir &operator=(const TempDir &) = delete;

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

inline std::string
toString(const std::uint8_t *data, std::size_t size)
{
    return std::string(reinterpret_cast<const char *>(data), size);
}

/**
 * Split the input on NUL bytes into exactly `sections` strings
 * (missing trailing sections come back empty, extra NULs stay in
 * the last section). NUL is a natural delimiter here: none of the
 * fuzzed text surfaces (JSON, env values, spec strings) carries
 * embedded NULs in valid inputs, and env vars cannot.
 */
inline std::vector<std::string>
splitSections(const std::uint8_t *data, std::size_t size,
              std::size_t sections)
{
    std::vector<std::string> out(sections);
    std::size_t start = 0;
    for (std::size_t s = 0; s + 1 < sections; ++s) {
        const void *nul =
            start < size ? std::memchr(data + start, 0, size - start)
                         : nullptr;
        if (!nul) {
            out[s].assign(
                reinterpret_cast<const char *>(data) + start,
                size - start);
            start = size;
            continue;
        }
        const std::size_t end = static_cast<std::size_t>(
            static_cast<const std::uint8_t *>(nul) - data);
        out[s].assign(reinterpret_cast<const char *>(data) + start,
                      end - start);
        start = end + 1;
    }
    out[sections - 1].assign(
        reinterpret_cast<const char *>(data) + start, size - start);
    return out;
}

inline void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
}

} // namespace qcfuzz

#endif // QC_FUZZ_FUZZ_UTIL_HH
