/**
 * @file
 * Fuzz the serve protocol's file parsers — the surfaces a hostile
 * or torn coordination directory hits. The input is three
 * NUL-separated sections: a lease file body, a queue-entry
 * document, and a shard-delta document.
 *
 *  - Lease::read must return false (never throw) on anything that
 *    is not a well-formed lease;
 *  - ShardDescriptor/ShardDelta::fromJson must reject-whole: false
 *    with the output untouched semantics the merge loop assumes,
 *    never a partially filled struct behind a true, never an
 *    exception.
 */

#include <stdexcept>
#include <string>

#include "api/Json.hh"
#include "fuzz/FuzzUtil.hh"
#include "serve/Lease.hh"
#include "serve/Protocol.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const auto sections = qcfuzz::splitSections(data, size, 3);

    {
        static const qcfuzz::TempDir tmp;
        const std::string leasePath = tmp.path() + "/fuzz.lease";
        qcfuzz::writeFile(leasePath, sections[0]);
        qc::LeaseInfo info;
        if (qc::Lease::read(leasePath, info)) {
            QC_FUZZ_ASSERT(info.pid >= 0,
                           "accepted lease with negative pid");
            QC_FUZZ_ASSERT(info.expiresMs >= 0,
                           "accepted lease with negative expiry");
        }
    }

    for (std::size_t s = 1; s < 3; ++s) {
        qc::Json doc;
        try {
            doc = qc::Json::parse(sections[s]);
        } catch (const std::invalid_argument &) {
            continue;
        }
        if (s == 1) {
            qc::ShardDescriptor descriptor;
            if (qc::ShardDescriptor::fromJson(doc, descriptor)) {
                QC_FUZZ_ASSERT(!descriptor.id.empty(),
                               "accepted descriptor with empty id");
                QC_FUZZ_ASSERT(descriptor.attempt >= 0,
                               "accepted negative attempt");
            }
        } else {
            qc::ShardDelta delta;
            if (qc::ShardDelta::fromJson(doc, delta)) {
                QC_FUZZ_ASSERT(!delta.id.empty(),
                               "accepted delta with empty id");
                // Accepted deltas round-trip: the coordinator
                // re-serializes merged state.
                qc::ShardDelta again;
                QC_FUZZ_ASSERT(
                    qc::ShardDelta::fromJson(delta.toJson(), again),
                    "accepted delta's toJson() was rejected");
                QC_FUZZ_ASSERT(again.points.size()
                                   == delta.points.size(),
                               "delta round-trip changed points");
            }
        }
    }
    return 0;
}
