/**
 * @file
 * Fuzz ExperimentConfig::fromJson — the entry point `qcarch run`
 * hands every user config file to. A hostile document must either
 * throw std::invalid_argument or produce a config whose toJson()
 * is a fixed point: fromJson(toJson(c)) serializes identically.
 * (The config hash feeding the sweep memo and the hoard key is
 * Json::hash of that serialization, so the fixed point is what
 * keeps cache identities stable.)
 */

#include <stdexcept>
#include <string>

#include "api/Experiment.hh"
#include "api/Json.hh"
#include "fuzz/FuzzUtil.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    qc::Json doc;
    try {
        doc = qc::Json::parse(qcfuzz::toString(data, size));
    } catch (const std::invalid_argument &) {
        return 0;
    }
    qc::ExperimentConfig config;
    try {
        config = qc::ExperimentConfig::fromJson(doc);
    } catch (const std::invalid_argument &) {
        return 0; // rejected cleanly
    }
    const std::string once = config.toJson().dump(2);
    qc::ExperimentConfig again;
    try {
        again = qc::ExperimentConfig::fromJson(
            qc::Json::parse(once));
    } catch (const std::invalid_argument &) {
        QC_FUZZ_ASSERT(false, "toJson() of an accepted config was "
                              "rejected by fromJson()");
    }
    QC_FUZZ_ASSERT(again.toJson().dump(2) == once,
                   "config round-trip not a fixed point");
    return 0;
}
