/**
 * @file
 * Fuzz the environment/string parsers that run before any real
 * work: FaultInjector::parse (--fault / QCARCH_FAULT),
 * simd::parseWidth, and resolveWidth under a hostile
 * QC_FORCE_WIDTH. Three NUL-separated sections, one per surface.
 *
 *  - FaultInjector::parse throws std::invalid_argument on bad
 *    specs and nothing else; an accepted spec is armed (or the
 *    empty disarmed spec);
 *  - parseWidth returns false on bad names, never throws;
 *  - resolveWidth under a hostile QC_FORCE_WIDTH throws
 *    std::runtime_error (the documented contract) or resolves to
 *    a width the CPU supports.
 */

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/simd/SimdDispatch.hh"
#include "fuzz/FuzzUtil.hh"
#include "serve/FaultInjector.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const auto sections = qcfuzz::splitSections(data, size, 3);

    try {
        const qc::FaultInjector fault =
            qc::FaultInjector::parse(sections[0]);
        QC_FUZZ_ASSERT(fault.armed() == !sections[0].empty(),
                       "parse armed state disagrees with spec");
    } catch (const std::invalid_argument &) {
        // rejected cleanly
    }

    qc::simd::Width width = qc::simd::Width::Auto;
    if (qc::simd::parseWidth(sections[1], &width)) {
        QC_FUZZ_ASSERT(*qc::simd::widthName(width) != '\0',
                       "parsed width has no name");
    }

    ::setenv("QC_FORCE_WIDTH", sections[2].c_str(), 1);
    try {
        const qc::simd::Width resolved =
            qc::simd::resolveWidth(qc::simd::Width::Auto);
        QC_FUZZ_ASSERT(qc::simd::widthSupported(resolved),
                       "resolved width the CPU cannot execute");
    } catch (const std::runtime_error &) {
        // rejected cleanly
    }
    ::unsetenv("QC_FORCE_WIDTH");

    // QCARCH_FAULT goes through the same parser via fromEnv; the
    // contract there is throw-or-armed, same as --fault.
    ::setenv("QCARCH_FAULT", sections[0].c_str(), 1);
    try {
        (void)qc::FaultInjector::fromEnv();
    } catch (const std::invalid_argument &) {
        // rejected cleanly
    }
    ::unsetenv("QCARCH_FAULT");
    return 0;
}
