/**
 * @file
 * Fuzz the JSON parser — the trust boundary every untrusted file
 * in the system crosses first. Properties on accepted documents:
 *
 *  - dump() must reparse (the serializer emits what the parser
 *    accepts), at indent 0 and 2;
 *  - the reparse must compare equal and hash identically (the
 *    sweep memo and the hoard key derivation depend on dump/parse
 *    being a fixed point);
 *  - a second dump must be byte-identical (determinism).
 *
 * Rejection (std::invalid_argument) is the expected outcome for
 * malformed input and is never a finding; anything else that
 * escapes parse() is.
 */

#include <stdexcept>
#include <string>

#include "api/Json.hh"
#include "fuzz/FuzzUtil.hh"

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const std::string text = qcfuzz::toString(data, size);
    qc::Json parsed;
    try {
        parsed = qc::Json::parse(text);
    } catch (const std::invalid_argument &) {
        return 0; // rejected cleanly: not a finding
    }

    const std::string pretty = parsed.dump(2);
    const std::string compact = parsed.dump(0);
    qc::Json fromPretty;
    qc::Json fromCompact;
    try {
        fromPretty = qc::Json::parse(pretty);
        fromCompact = qc::Json::parse(compact);
    } catch (const std::invalid_argument &) {
        QC_FUZZ_ASSERT(false, "dump() emitted unparseable JSON");
    }
    QC_FUZZ_ASSERT(fromPretty == parsed,
                   "pretty round-trip changed the value");
    QC_FUZZ_ASSERT(fromCompact == parsed,
                   "compact round-trip changed the value");
    QC_FUZZ_ASSERT(fromPretty.hash() == parsed.hash(),
                   "round-trip changed the content hash");
    QC_FUZZ_ASSERT(fromPretty.dump(2) == pretty,
                   "second dump not byte-identical");
    return 0;
}
