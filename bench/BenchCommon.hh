/**
 * @file
 * Shared helpers for the table/figure bench binaries: canonical
 * 32-bit paper benchmark construction and paper-vs-measured table
 * emission.
 */

#ifndef QC_BENCH_BENCH_COMMON_HH
#define QC_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "api/Qc.hh"
#include "common/Table.hh"
#include "factory/ZeroFactory.hh"
#include "layout/Builders.hh"
#include "sweep/Sweep.hh"

namespace qc::bench {

/**
 * The pipelined zero factory sized with the verification acceptance
 * measured by the batched Pauli-frame Monte Carlo engine (movement
 * charges calibrated from the routed Fig 11 layout), announced on
 * stdout. Shared by the figure benches so they price demand against
 * one consistent factory design.
 */
inline ZeroFactory
calibratedZeroFactory()
{
    const MovementModel movement = calibrateMovement(
        buildSimpleFactory(), IonTrapParams::paper());
    const ZeroFactory factory = ZeroFactory::calibrated(
        IonTrapParams::paper(), ErrorParams::paper(), movement);
    std::cout << "zero factory: measured acceptance "
              << fmtPct(factory.acceptRate(), 2) << ", throughput "
              << fmtFixed(factory.throughput(), 1) << " /ms\n";
    return factory;
}

/**
 * Build the paper's three 32-bit benchmarks through the workload
 * registry, with the shared paper-parity synthesis options
 * (ExperimentConfig::paper).
 */
inline std::vector<Workload>
paperBenchmarks()
{
    static FowlerSynth synth(
        ExperimentConfig::paper("qrca").synth);
    std::vector<Workload> out;
    WorkloadParams params;
    params.bits = 32;
    for (const char *name : {"qrca", "qcla", "qft"}) {
        out.push_back(WorkloadRegistry::instance().build(
            name, synth, params));
    }
    return out;
}

/** Parse an integer CLI argument of the form name=value. */
inline std::uint64_t
argValue(int argc, char **argv, const std::string &name,
         std::uint64_t fallback)
{
    const std::string prefix = name + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            return std::strtoull(arg.c_str() + prefix.size(),
                                 nullptr, 10);
    }
    return fallback;
}

/** Parse a string CLI argument of the form name=value. */
inline std::string
argString(int argc, char **argv, const std::string &name,
          const std::string &fallback)
{
    const std::string prefix = name + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            return arg.substr(prefix.size());
    }
    return fallback;
}

/** Print a titled section separator. */
inline void
section(const std::string &title)
{
    std::cout << "\n== " << title << " ==\n";
}

/** Whether a name=value CLI argument is present at all. */
inline bool
hasArg(int argc, char **argv, const std::string &name)
{
    const std::string prefix = name + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind(prefix, 0) == 0)
            return true;
    }
    return false;
}

/**
 * Shared main for the sweep-backed figure benches: load the shipped
 * spec (specs/<specName>, overridable with spec=PATH), apply any
 * numeric CLI overrides into the spec base (e.g. trials=, bits=),
 * run it on the parallel sweep engine (threads=N, 0 = all cores)
 * and write the aggregated JSON to out=PATH. resume=PREV.json
 * restarts from a previous output, exactly like `qcarch sweep
 * --resume` — the emitted document is byte-identical either way.
 *
 * The bench binaries and `qcarch sweep specs/<specName>` are the
 * same computation by construction: one spec, one engine.
 */
inline int
runSweepBench(
    int argc, char **argv, const std::string &specName,
    const std::string &defaultOut,
    const std::vector<std::pair<std::string, std::string>>
        &numericOverrides = {})
{
    const std::string specPath = argString(
        argc, argv, "spec", std::string(QC_SPEC_DIR "/") + specName);
    const std::string out = argString(argc, argv, "out", defaultOut);
    const std::string resumePath =
        argString(argc, argv, "resume", "");

    SweepSpec spec;
    try {
        spec = SweepSpec::load(specPath);
        for (const auto &[arg, path] : numericOverrides) {
            if (!hasArg(argc, argv, arg))
                continue;
            const Json value(argValue(argc, argv, arg, 0));
            // Grid bases merge over the spec base, so a CLI
            // override must land in both to win everywhere.
            setJsonPath(spec.base, path, value);
            for (SweepGrid &grid : spec.grids)
                setJsonPath(grid.base, path, value);
        }

        SweepOptions options;
        options.threads = static_cast<int>(
            argValue(argc, argv, "threads", 0));
        options.checkpointPath = out;
        options.progress = [](const SweepProgress &p) {
            std::cerr << "\r[" << p.done << "/" << p.total << "]"
                      << (p.done == p.total ? "\n" : "")
                      << std::flush;
        };
        Json resumeDoc;
        if (!resumePath.empty()) {
            resumeDoc = Json::loadFile(resumePath);
            options.resume = &resumeDoc;
        }

        const SweepReport report = runSweep(spec, options);
        report.doc.saveFile(out);
        std::cout << "wrote " << report.points << " sweep points ("
                  << report.executed << " executed, "
                  << report.resumed << " resumed, "
                  << report.cacheHits << " cached) to " << out
                  << " in " << fmtFixed(report.wallSeconds, 1)
                  << " s\n";
        return report.failed == 0 ? 0 : 1;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}

} // namespace qc::bench

#endif // QC_BENCH_BENCH_COMMON_HH
