/**
 * @file
 * Shared helpers for the table/figure bench binaries: canonical
 * 32-bit paper benchmark construction and paper-vs-measured table
 * emission.
 */

#ifndef QC_BENCH_BENCH_COMMON_HH
#define QC_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "api/Qc.hh"
#include "common/Table.hh"
#include "factory/ZeroFactory.hh"
#include "layout/Builders.hh"

namespace qc::bench {

/**
 * The pipelined zero factory sized with the verification acceptance
 * measured by the batched Pauli-frame Monte Carlo engine (movement
 * charges calibrated from the routed Fig 11 layout), announced on
 * stdout. Shared by the figure benches so they price demand against
 * one consistent factory design.
 */
inline ZeroFactory
calibratedZeroFactory()
{
    const MovementModel movement = calibrateMovement(
        buildSimpleFactory(), IonTrapParams::paper());
    const ZeroFactory factory = ZeroFactory::calibrated(
        IonTrapParams::paper(), ErrorParams::paper(), movement);
    std::cout << "zero factory: measured acceptance "
              << fmtPct(factory.acceptRate(), 2) << ", throughput "
              << fmtFixed(factory.throughput(), 1) << " /ms\n";
    return factory;
}

/**
 * Build the paper's three 32-bit benchmarks through the workload
 * registry, with the shared paper-parity synthesis options
 * (ExperimentConfig::paper).
 */
inline std::vector<Workload>
paperBenchmarks()
{
    static FowlerSynth synth(
        ExperimentConfig::paper("qrca").synth);
    std::vector<Workload> out;
    WorkloadParams params;
    params.bits = 32;
    for (const char *name : {"qrca", "qcla", "qft"}) {
        out.push_back(WorkloadRegistry::instance().build(
            name, synth, params));
    }
    return out;
}

/** Parse an integer CLI argument of the form name=value. */
inline std::uint64_t
argValue(int argc, char **argv, const std::string &name,
         std::uint64_t fallback)
{
    const std::string prefix = name + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            return std::strtoull(arg.c_str() + prefix.size(),
                                 nullptr, 10);
    }
    return fallback;
}

/** Parse a string CLI argument of the form name=value. */
inline std::string
argString(int argc, char **argv, const std::string &name,
          const std::string &fallback)
{
    const std::string prefix = name + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            return arg.substr(prefix.size());
    }
    return fallback;
}

/** Print a titled section separator. */
inline void
section(const std::string &title)
{
    std::cout << "\n== " << title << " ==\n";
}

} // namespace qc::bench

#endif // QC_BENCH_BENCH_COMMON_HH
