/**
 * @file
 * Shared helpers for the table/figure bench binaries: canonical
 * 32-bit paper benchmark construction and paper-vs-measured table
 * emission.
 */

#ifndef QC_BENCH_BENCH_COMMON_HH
#define QC_BENCH_BENCH_COMMON_HH

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/Table.hh"
#include "factory/ZeroFactory.hh"
#include "kernels/Kernels.hh"
#include "layout/Builders.hh"

namespace qc::bench {

/**
 * The pipelined zero factory sized with the verification acceptance
 * measured by the batched Pauli-frame Monte Carlo engine (movement
 * charges calibrated from the routed Fig 11 layout), announced on
 * stdout. Shared by the figure benches so they price demand against
 * one consistent factory design.
 */
inline ZeroFactory
calibratedZeroFactory()
{
    const MovementModel movement = calibrateMovement(
        buildSimpleFactory(), IonTrapParams::paper());
    const ZeroFactory factory = ZeroFactory::calibrated(
        IonTrapParams::paper(), ErrorParams::paper(), movement);
    std::cout << "zero factory: measured acceptance "
              << fmtPct(factory.acceptRate(), 2) << ", throughput "
              << fmtFixed(factory.throughput(), 1) << " /ms\n";
    return factory;
}

/** Build the paper's three 32-bit benchmarks with shared options. */
inline std::vector<Benchmark>
paperBenchmarks()
{
    // Literal {H, T} rotation words, as in Fowler's search and the
    // paper's QFT derivation (Section 2.5).
    static FowlerSynth synth(FowlerSynth::Options{
        /*maxSyllables=*/6, /*maxError=*/1e-3, /*pureHT=*/true,
        /*tCostWeight=*/3});
    BenchmarkOptions opts;
    opts.bits = 32;
    return makeAllBenchmarks(synth, opts);
}

/** Parse an integer CLI argument of the form name=value. */
inline std::uint64_t
argValue(int argc, char **argv, const std::string &name,
         std::uint64_t fallback)
{
    const std::string prefix = name + "=";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            return std::strtoull(arg.c_str() + prefix.size(),
                                 nullptr, 10);
    }
    return fallback;
}

/** Print a titled section separator. */
inline void
section(const std::string &title)
{
    std::cout << "\n== " << title << " ==\n";
}

} // namespace qc::bench

#endif // QC_BENCH_BENCH_COMMON_HH
