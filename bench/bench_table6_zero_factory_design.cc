/**
 * @file
 * Table 6: bandwidth-matched unit counts of the pipelined
 * encoded-zero factory, with crossbar sizing, total area and
 * sustained throughput (paper: 298 macroblocks, 10.5 encoded
 * ancillae / ms).
 */

#include <iostream>

#include "BenchCommon.hh"
#include "common/Table.hh"
#include "factory/ZeroFactory.hh"

int
main()
{
    using namespace qc;

    const ZeroFactory factory(IonTrapParams::paper(), 0.998);
    bench::section("Table 6: zero-factory design");

    TextTable t;
    t.header({"Functional Unit", "Count", "Total Height",
              "Total Area"});
    for (const StageDesign &s : factory.stages()) {
        t.row({s.unit.name, fmtInt(s.count),
               fmtInt(s.totalHeight()), fmtFixed(s.totalArea(), 0)});
    }
    t.print(std::cout);

    bench::section("Crossbars and totals");
    TextTable x;
    x.header({"Quantity", "Value", "Paper"});
    int xb = 1;
    for (const CrossbarDesign &c : factory.crossbars()) {
        x.row({"Crossbar " + std::to_string(xb++) + " (cols x h)",
               std::to_string(c.columns) + " x "
                   + std::to_string(c.height),
               ""});
    }
    x.row({"Functional unit area",
           fmtFixed(factory.functionalUnitArea(), 0), "130"});
    x.row({"Crossbar area", fmtFixed(factory.crossbarArea(), 0),
           "168"});
    x.row({"Total area", fmtFixed(factory.totalArea(), 0), "298"});
    x.row({"Throughput (enc ancillae/ms)",
           fmtFixed(factory.throughput(), 1), "10.5"});
    x.row({"Pipeline latency (us)",
           fmtFixed(toUs(factory.latency()), 0), "-"});
    x.print(std::cout);
    return 0;
}
