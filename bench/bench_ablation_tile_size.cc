/**
 * @file
 * Ablation (Section 5.3, Figure 16): Qalypso tile sizing — the
 * paper's stated open problem. Data regions should be "as large as
 * possible" so data qubits reach each other ballistically instead
 * of by teleportation, but ballistic hops grow with region size and
 * ancilla multiplexing happens only within a tile.
 *
 * Uses the full tiled model (arch/QalypsoTile.hh): per-tile factory
 * pools sized from a fixed per-tile area budget, ballistic
 * intra-tile movement, teleportation between tiles.
 */

#include <iostream>

#include "BenchCommon.hh"
#include "arch/QalypsoTile.hh"
#include "arch/SpeedOfData.hh"
#include "circuit/Dataflow.hh"
#include "common/Table.hh"

int
main()
{
    using namespace qc;

    const EncodedOpModel model(IonTrapParams::paper());

    for (const Workload &b : bench::paperBenchmarks()) {
        const DataflowGraph graph(b.lowered.circuit);
        const BandwidthSummary bw =
            bandwidthAtSpeedOfData(graph, model);
        const int nq = static_cast<int>(b.lowered.circuit.numQubits());

        bench::section("Tile-size ablation: " + b.name + " ("
                       + std::to_string(nq)
                       + " logical qubits; speed-of-data "
                       + fmtFixed(toMs(bw.runtime), 2) + " ms)");
        TextTable t;
        t.header({"tile size", "tiles", "factory area", "exec (ms)",
                  "x optimal", "inter-tile 2q", "teleports"});

        for (int tile : {8, 16, 32, 64, 128, 256}) {
            if (tile > 2 * nq)
                break;
            QalypsoConfig config;
            config.tileSize = tile;
            // Keep the *total* factory budget constant across the
            // sweep so only the organization varies.
            const Area total_budget = 4000;
            const int tiles = (nq + tile - 1) / tile;
            config.factoryAreaPerTile = total_budget / tiles;
            const QalypsoRunResult r =
                runQalypso(graph, model, config);
            t.row({fmtInt(tile), fmtInt(r.tiles),
                   fmtFixed(r.totalFactoryArea, 0),
                   fmtFixed(toMs(r.makespan), 2),
                   fmtFixed(static_cast<double>(r.makespan)
                                / static_cast<double>(bw.runtime),
                            2),
                   fmtPct(r.interTileFraction()),
                   fmtInt(static_cast<long long>(r.teleports))});
        }
        t.print(std::cout);
    }
    std::cout << "\nSmall tiles teleport constantly and fragment the "
                 "ancilla supply; one huge region pays long "
                 "ballistic hops. The sweet spot sits where most "
                 "interacting qubits share a tile — the trade-off "
                 "the paper defers to future work.\n";
    return 0;
}
