/**
 * @file
 * Figure 4 (plus the Section 2.3 basic-prep number): Monte Carlo
 * logical-error rates of the encoded-zero preparation strategies,
 * the verification failure rate, and the pi/8 conversion error.
 *
 * Paper values: basic 1.8e-3; verify-only 3.7e-4; correct-only
 * 1.1e-3; verify+correct 2.9e-5; verification failure rate 0.2%.
 *
 * Both correction semantics are reported: the paper's Fig 4b/4c
 * apply decoded fixes in place (ApplyFix); a production factory can
 * instead discard-and-recycle on any detected error
 * (DiscardOnSyndrome), which the paper motivates for short-lived
 * ancillae in Section 3 and which is what our factory throughput
 * model assumes.
 *
 * Runs on the bit-parallel batched engine (BatchAncillaSim, 64+
 * trials per word op), which makes the default ten-million-trial
 * resolution — needed to pin rates at the 2.9e-5 scale — a
 * seconds-long run instead of a minutes-long one. The achieved
 * trial rate is reported per strategy.
 *
 * Usage: bench_fig4_ancilla_error_rates [trials=N] [seed=S]
 *        [threads=T]   (threads=0 = all hardware threads)
 */

#include <chrono>
#include <iostream>

#include "BenchCommon.hh"
#include "common/Table.hh"
#include "error/BatchAncillaSim.hh"
#include "layout/Builders.hh"

int
main(int argc, char **argv)
{
    using namespace qc;
    using Clock = std::chrono::steady_clock;

    const std::uint64_t trials =
        bench::argValue(argc, argv, "trials", 10000000);
    const std::uint64_t seed =
        bench::argValue(argc, argv, "seed", 20080623);
    BatchSimConfig config;
    config.threads = static_cast<int>(
        bench::argValue(argc, argv, "threads", 0));

    // Movement charges calibrated from the routed Fig 11 layout.
    const MovementModel movement = calibrateMovement(
        buildSimpleFactory(), IonTrapParams::paper());

    bench::section("Figure 4: ancilla preparation error rates ("
                   + std::to_string(trials) + " trials/strategy)");

    const struct
    {
        ZeroPrepStrategy strategy;
        const char *paper;
    } rows[] = {
        {ZeroPrepStrategy::Basic, "1.8e-3"},
        {ZeroPrepStrategy::VerifyOnly, "3.7e-4"},
        {ZeroPrepStrategy::CorrectOnly, "1.1e-3"},
        {ZeroPrepStrategy::VerifyAndCorrect, "2.9e-5"},
    };

    for (auto semantics : {CorrectionSemantics::ApplyFix,
                           CorrectionSemantics::DiscardOnSyndrome}) {
        bench::section(
            semantics == CorrectionSemantics::ApplyFix
                ? "Correction semantics: apply decoded fix (paper "
                  "Fig 4)"
                : "Correction semantics: discard on detected error "
                  "(factory recycling)");
        TextTable t;
        t.header({"Strategy", "Error Rate", "95% CI", "Verify Fail",
                  "Corr Recycle", "Mtrials/s", "Paper"});
        BatchAncillaSim sim(ErrorParams::paper(), movement, seed,
                            semantics, config);
        for (const auto &row : rows) {
            const auto t0 = Clock::now();
            const PrepEstimate est =
                sim.estimate(row.strategy, trials);
            const double secs =
                std::chrono::duration<double>(Clock::now() - t0)
                    .count();
            const Interval ci = est.errorInterval();
            t.row({zeroPrepStrategyName(row.strategy),
                   fmtSci(est.errorRate(), 2),
                   "[" + fmtSci(ci.lo, 1) + ", " + fmtSci(ci.hi, 1)
                       + "]",
                   fmtPct(est.discardRate(), 2),
                   fmtPct(est.correctionDiscardRate(), 2),
                   fmtFixed(static_cast<double>(est.trials) / secs
                                / 1e6,
                            1),
                   row.paper});
        }
        t.print(std::cout);
    }

    bench::section("pi/8 conversion (Fig 5b) on verified+corrected "
                   "zeros");
    BatchAncillaSim sim(ErrorParams::paper(), movement, seed,
                        CorrectionSemantics::DiscardOnSyndrome,
                        config);
    const PrepEstimate pi8 = sim.estimatePi8(trials / 4);
    std::cout << "pi/8 ancilla error rate: "
              << fmtSci(pi8.errorRate(), 2) << "  (95% CI ["
              << fmtSci(pi8.errorInterval().lo, 1) << ", "
              << fmtSci(pi8.errorInterval().hi, 1) << "])\n";
    return 0;
}
