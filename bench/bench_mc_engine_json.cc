/**
 * @file
 * Machine-readable Monte Carlo engine baseline: times the scalar
 * reference engine against the bit-parallel batched engine on the
 * Figure 4 workloads, measures multicore thread scaling of both
 * the batched engine and the sweep engine, and writes everything
 * to BENCH_mc_engine.json so future PRs can track the trajectory
 * of the simulation hot path without parsing human-oriented
 * tables.
 *
 * Trial rates and speedups are wall-clock measurements: they are
 * machine-dependent, and the CI regression gate treats them as
 * regression-only metrics (tools/check_bench_regression.py). The
 * error rates are deterministic for a given (seed, trials).
 *
 * Usage: bench_mc_engine_json [trials=N] [seed=S] [out=PATH]
 *        [scaling=0|1]
 *   trials   batch-engine trials per workload (scalar runs
 *            trials/16 to keep the wall time balanced)
 *   scaling  measure thread scaling (default 1; always runs
 *            threads 1/2/4 — on fewer cores the oversubscribed
 *            rows document the flat-scaling floor)
 */

#include <chrono>
#include <iostream>
#include <string>
#include <thread>

#include "BenchCommon.hh"
#include "error/AncillaSim.hh"
#include "error/BatchAncillaSim.hh"

namespace {

using namespace qc;
using Clock = std::chrono::steady_clock;

template <typename F>
double
trialsPerSec(std::uint64_t trials, F &&body)
{
    const auto t0 = Clock::now();
    body();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return secs > 0 ? static_cast<double>(trials) / secs : 0.0;
}

struct McWorkload
{
    const char *key;
    ZeroPrepStrategy strategy;
    bool pi8;
};

/** The in-memory 8-point mc-prep spec used for sweep scaling. */
SweepSpec
scalingSpec(std::uint64_t trials, std::uint64_t seed)
{
    Json doc = Json::object();
    doc.set("name", "mc_engine_thread_scaling");
    doc.set("runner", "mc-prep");
    Json base = Json::object();
    base.set("trials", trials);
    base.set("seed", seed);
    base.set("strategy", "verify_and_correct");
    doc.set("base", base);
    Json axes = Json::array();
    Json axis = Json::object();
    axis.set("field", "pGate");
    Json values = Json::array();
    for (double p : {1e-5, 2e-5, 3e-5, 5e-5, 1e-4, 2e-4, 3e-4,
                     5e-4})
        values.push(p);
    axis.set("values", values);
    axes.push(axis);
    doc.set("axes", axes);
    return SweepSpec::fromJson(doc);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t trials =
        bench::argValue(argc, argv, "trials", 4000000);
    const std::uint64_t seed =
        bench::argValue(argc, argv, "seed", 20080623);
    const bool scaling =
        bench::argValue(argc, argv, "scaling", 1) != 0;
    const std::string out = bench::argString(
        argc, argv, "out", "BENCH_mc_engine.json");

    const McWorkload workloads[] = {
        {"basic_prep", ZeroPrepStrategy::Basic, false},
        {"verify_and_correct", ZeroPrepStrategy::VerifyAndCorrect,
         false},
        {"pi8_conversion", ZeroPrepStrategy::VerifyAndCorrect, true},
    };

    Json doc = Json::object();
    doc.set("engine", "BatchAncillaSim");
    doc.set("batch_trials_per_word_op", 64);
    doc.set("trials", trials);
    doc.set("seed", seed);

    Json workloadsJson = Json::object();
    for (const McWorkload &w : workloads) {
        const std::uint64_t scalar_trials = trials / 16;
        AncillaPrepSimulator scalar(ErrorParams::paper(),
                                    MovementModel{}, seed);
        PrepEstimate scalar_est;
        const double scalar_rate =
            trialsPerSec(scalar_trials, [&] {
                scalar_est = w.pi8
                    ? scalar.estimateScalarPi8(scalar_trials)
                    : scalar.estimateScalar(w.strategy,
                                            scalar_trials);
            });

        BatchAncillaSim batch(ErrorParams::paper(), MovementModel{},
                              seed);
        PrepEstimate batch_est;
        const double batch_rate = trialsPerSec(trials, [&] {
            batch_est = w.pi8 ? batch.estimatePi8(trials)
                              : batch.estimate(w.strategy, trials);
        });

        Json j = Json::object();
        j.set("scalar_trials_per_sec", scalar_rate);
        j.set("batch_trials_per_sec", batch_rate);
        j.set("speedup",
              scalar_rate > 0 ? batch_rate / scalar_rate : 0.0);
        j.set("scalar_error_rate", scalar_est.errorRate());
        j.set("batch_error_rate", batch_est.errorRate());
        workloadsJson.set(w.key, j);

        std::cout << w.key << ": scalar " << scalar_rate / 1e6
                  << " Mtrials/s, batch " << batch_rate / 1e6
                  << " Mtrials/s ("
                  << (scalar_rate > 0 ? batch_rate / scalar_rate
                                      : 0.0)
                  << "x)\n";
    }
    doc.set("workloads", workloadsJson);

    // Multicore thread scaling: the batched engine sharding one
    // estimate across its own threads, and the sweep engine
    // spreading whole points across its work-stealing pool. Both
    // are bit-identical across thread counts; only the rates move.
    if (scaling) {
        const unsigned hw = std::thread::hardware_concurrency();
        Json scalingJson = Json::object();
        scalingJson.set("hardware_concurrency",
                        static_cast<int>(hw ? hw : 1));

        const std::uint64_t scalingTrials = trials / 4;
        Json engineJson = Json::object();
        Json sweepJson = Json::object();
        for (int threads : {1, 2, 4}) {
            BatchSimConfig config;
            config.threads = threads;
            BatchAncillaSim sim(ErrorParams::paper(),
                                MovementModel{}, seed,
                                CorrectionSemantics::
                                    DiscardOnSyndrome,
                                config);
            const double rate = trialsPerSec(scalingTrials, [&] {
                sim.estimate(ZeroPrepStrategy::VerifyAndCorrect,
                             scalingTrials);
            });
            Json e = Json::object();
            e.set("trials_per_sec", rate);
            engineJson.set(std::to_string(threads), e);

            const SweepSpec spec =
                scalingSpec(scalingTrials / 8, seed);
            SweepOptions options;
            options.threads = threads;
            const SweepReport report = runSweep(spec, options);
            Json s = Json::object();
            s.set("points", report.points);
            s.set("points_per_sec",
                  report.wallSeconds > 0
                      ? static_cast<double>(report.points)
                          / report.wallSeconds
                      : 0.0);
            sweepJson.set(std::to_string(threads), s);

            std::cout << "threads=" << threads << ": engine "
                      << rate / 1e6 << " Mtrials/s, sweep "
                      << (report.wallSeconds > 0
                              ? static_cast<double>(report.points)
                                  / report.wallSeconds
                              : 0.0)
                      << " points/s\n";
        }
        scalingJson.set("engine_trials",
                        Json(scalingTrials));
        scalingJson.set("batch_engine", engineJson);
        scalingJson.set("sweep_engine", sweepJson);
        doc.set("thread_scaling", scalingJson);
    }

    try {
        doc.saveFile(out);
    } catch (const std::invalid_argument &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    std::cout << "wrote " << out << "\n";
    return 0;
}
