/**
 * @file
 * Machine-readable Monte Carlo engine baseline: times the scalar
 * reference engine against the bit-parallel batched engine on the
 * Figure 4 workloads, measures the batched engine at every SIMD
 * width the build supports, compares the naive and stratified
 * (rare-event importance sampling) estimators, measures multicore
 * thread scaling of both the batched engine and the sweep engine,
 * and writes everything to BENCH_mc_engine.json so future PRs can
 * track the trajectory of the simulation hot path without parsing
 * human-oriented tables.
 *
 * Trial rates and speedups are wall-clock measurements: they are
 * machine-dependent, and the CI regression gate treats them as
 * regression-only metrics (tools/check_bench_regression.py); the
 * dispatched_* keys record which width/ISA auto-dispatch picked on
 * the bench machine and are ignored by the gate. The error rates,
 * intervals and site counts are deterministic for a given (seed,
 * trials).
 *
 * Usage: bench_mc_engine_json [trials=N] [seed=S] [out=PATH]
 *        [scaling=0|1] [quick=0|1]
 *   trials   batch-engine trials per workload (scalar runs
 *            trials/16 to keep the wall time balanced)
 *   scaling  measure thread scaling (default 1; always runs
 *            threads 1/2/4 — on fewer cores the oversubscribed
 *            rows document the flat-scaling floor)
 *   quick    emit only the deterministic outputs (error rates and
 *            stratified estimates; no timings, no dispatch info).
 *            The CI width-dispatch matrix diffs this output
 *            byte-for-byte across QC_FORCE_WIDTH settings.
 */

#include <chrono>
#include <iostream>
#include <string>
#include <thread>

#include "BenchCommon.hh"
#include "error/AncillaSim.hh"
#include "error/BatchAncillaSim.hh"

namespace {

using namespace qc;
using Clock = std::chrono::steady_clock;

template <typename F>
double
trialsPerSec(std::uint64_t trials, F &&body)
{
    const auto t0 = Clock::now();
    body();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return secs > 0 ? static_cast<double>(trials) / secs : 0.0;
}

struct McWorkload
{
    const char *key;
    ZeroPrepStrategy strategy;
    bool pi8;
};

constexpr McWorkload kWorkloads[] = {
    {"basic_prep", ZeroPrepStrategy::Basic, false},
    {"verify_and_correct", ZeroPrepStrategy::VerifyAndCorrect,
     false},
    {"pi8_conversion", ZeroPrepStrategy::VerifyAndCorrect, true},
};

/** The in-memory 8-point mc-prep spec used for sweep scaling. */
SweepSpec
scalingSpec(std::uint64_t trials, std::uint64_t seed)
{
    Json doc = Json::object();
    doc.set("name", "mc_engine_thread_scaling");
    doc.set("runner", "mc-prep");
    Json base = Json::object();
    base.set("trials", trials);
    base.set("seed", seed);
    base.set("strategy", "verify_and_correct");
    doc.set("base", base);
    Json axes = Json::array();
    Json axis = Json::object();
    axis.set("field", "pGate");
    Json values = Json::array();
    for (double p : {1e-5, 2e-5, 3e-5, 5e-5, 1e-4, 2e-4, 3e-4,
                     5e-4})
        values.push(p);
    axis.set("values", values);
    axes.push(axis);
    doc.set("axes", axes);
    return SweepSpec::fromJson(doc);
}

/** Stratified estimate at (pGate, pMove), serialized to JSON. */
Json
stratifiedJson(double p_gate, double p_move, std::uint64_t seed,
               bool pi8)
{
    ErrorParams errors;
    errors.pGate = p_gate;
    errors.pMove = p_move;
    BatchAncillaSim sim(errors, MovementModel{}, seed);
    ImportanceConfig ic;
    ic.maxFaults = 4;
    ic.trialsPerStratum = 20000;
    const StratifiedEstimate est = pi8
        ? sim.estimateStratifiedPi8(ic)
        : sim.estimateStratified(
              ZeroPrepStrategy::VerifyAndCorrect, ic);
    const Interval ci = est.errorInterval();
    Json j = Json::object();
    j.set("pGate", p_gate);
    j.set("pMove", p_move);
    j.set("error_rate", est.errorRate());
    j.set("ci_lo", ci.lo);
    j.set("ci_hi", ci.hi);
    j.set("gate_sites", static_cast<std::int64_t>(est.gateSites));
    j.set("move_sites", static_cast<std::int64_t>(est.moveSites));
    j.set("strata", static_cast<std::int64_t>(est.strata.size()));
    j.set("truncated_prior", est.truncatedPrior);
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = bench::argValue(argc, argv, "quick", 0) != 0;
    const std::uint64_t trials = bench::argValue(
        argc, argv, "trials", quick ? 1048576 : 4000000);
    const std::uint64_t seed =
        bench::argValue(argc, argv, "seed", 20080623);
    const bool scaling = !quick
        && bench::argValue(argc, argv, "scaling", 1) != 0;
    const std::string out = bench::argString(
        argc, argv, "out", "BENCH_mc_engine.json");

    Json doc = Json::object();
    doc.set("engine", "BatchAncillaSim");
    doc.set("batch_trials_per_word_op", 64);
    doc.set("trials", trials);
    doc.set("seed", seed);

    Json workloadsJson = Json::object();
    for (const McWorkload &w : kWorkloads) {
        Json j = Json::object();

        BatchAncillaSim batch(ErrorParams::paper(), MovementModel{},
                              seed);
        PrepEstimate batch_est;
        const double batch_rate = trialsPerSec(trials, [&] {
            batch_est = w.pi8 ? batch.estimatePi8(trials)
                              : batch.estimate(w.strategy, trials);
        });
        j.set("batch_error_rate", batch_est.errorRate());

        if (!quick) {
            const std::uint64_t scalar_trials = trials / 16;
            AncillaPrepSimulator scalar(ErrorParams::paper(),
                                        MovementModel{}, seed);
            PrepEstimate scalar_est;
            const double scalar_rate =
                trialsPerSec(scalar_trials, [&] {
                    scalar_est = w.pi8
                        ? scalar.estimateScalarPi8(scalar_trials)
                        : scalar.estimateScalar(w.strategy,
                                                scalar_trials);
                });
            j.set("scalar_trials_per_sec", scalar_rate);
            j.set("batch_trials_per_sec", batch_rate);
            j.set("speedup", scalar_rate > 0
                                 ? batch_rate / scalar_rate
                                 : 0.0);
            j.set("scalar_error_rate", scalar_est.errorRate());
            std::cout << w.key << ": scalar " << scalar_rate / 1e6
                      << " Mtrials/s, batch " << batch_rate / 1e6
                      << " Mtrials/s ("
                      << (scalar_rate > 0
                              ? batch_rate / scalar_rate
                              : 0.0)
                      << "x)\n";
        }
        workloadsJson.set(w.key, j);
    }
    doc.set("workloads", workloadsJson);

    // Stratified (rare-event importance sampling) estimator: a
    // feasible validation point whose naive CI it must straddle,
    // and a deep-subthreshold point naive MC cannot resolve at any
    // reasonable trial count. Both are deterministic.
    {
        Json samplerJson = Json::object();
        const double vGate = 1e-3, vMove = 1e-5;
        samplerJson.set(
            "validation_stratified",
            stratifiedJson(vGate, vMove, seed, /*pi8=*/false));
        samplerJson.set(
            "deep_stratified",
            stratifiedJson(1e-5, 1e-7, seed, /*pi8=*/false));
        samplerJson.set(
            "deep_stratified_pi8",
            stratifiedJson(1e-5, 1e-7, seed, /*pi8=*/true));
        if (!quick) {
            ErrorParams errors;
            errors.pGate = vGate;
            errors.pMove = vMove;
            BatchAncillaSim sim(errors, MovementModel{}, seed);
            const std::uint64_t vTrials = 4000000;
            PrepEstimate naive;
            const double naive_rate = trialsPerSec(vTrials, [&] {
                naive = sim.estimate(
                    ZeroPrepStrategy::VerifyAndCorrect, vTrials);
            });
            const Interval ci = naive.errorInterval();
            Json j = Json::object();
            j.set("pGate", vGate);
            j.set("pMove", vMove);
            j.set("error_rate", naive.errorRate());
            j.set("ci_lo", ci.lo);
            j.set("ci_hi", ci.hi);
            j.set("trials_per_sec", naive_rate);
            samplerJson.set("validation_naive", j);
        }
        doc.set("sampler", samplerJson);
    }

    if (quick) {
        // Deterministic-only output: byte-identical across SIMD
        // widths by construction, which the CI width matrix checks
        // with cmp. Timings and dispatch info would break that.
        try {
            doc.saveFile(out);
        } catch (const std::invalid_argument &e) {
            std::cerr << e.what() << "\n";
            return 1;
        }
        std::cout << "wrote " << out << " (quick)\n";
        return 0;
    }

    // Per-width throughput of the batched engine on the basic-prep
    // workload (the purest frame-op hot loop). Every width returns
    // bit-identical tallies; only the rate moves. The seed-shape
    // row pins the pre-SIMD engine configuration (64-bit words,
    // 4 words per qubit) so the history of BENCH_mc_engine.json
    // documents what the width dispatch bought end to end.
    {
        doc.set("dispatched_width",
                simd::widthName(simd::resolveWidth(
                    simd::Width::Auto)));
        doc.set("dispatched_isa", simd::dispatchedIsa());

        Json widthsJson = Json::object();
        double w64_rate = 0.0;
        for (simd::Width w :
             {simd::Width::Scalar, simd::Width::W64,
              simd::Width::W128, simd::Width::W256,
              simd::Width::W512}) {
            if (!simd::widthSupported(w))
                continue;
            BatchSimConfig config;
            config.width = w;
            BatchAncillaSim sim(ErrorParams::paper(),
                                MovementModel{}, seed,
                                CorrectionSemantics::
                                    DiscardOnSyndrome,
                                config);
            const double rate = trialsPerSec(trials, [&] {
                sim.estimate(ZeroPrepStrategy::Basic, trials);
            });
            if (w == simd::Width::W64)
                w64_rate = rate;
            Json j = Json::object();
            j.set("basic_prep_trials_per_sec", rate);
            widthsJson.set(simd::widthName(w), j);
            std::cout << "width=" << simd::widthName(w) << ": "
                      << rate / 1e6 << " Mtrials/s\n";
        }

        BatchSimConfig seedShape;
        seedShape.width = simd::Width::W64;
        seedShape.wordsPerQubit = 4;
        BatchAncillaSim seedSim(ErrorParams::paper(),
                                MovementModel{}, seed,
                                CorrectionSemantics::
                                    DiscardOnSyndrome,
                                seedShape);
        const double seed_shape_rate = trialsPerSec(trials, [&] {
            seedSim.estimate(ZeroPrepStrategy::Basic, trials);
        });

        BatchAncillaSim autoSim(ErrorParams::paper(),
                                MovementModel{}, seed);
        const double wide_rate = trialsPerSec(trials, [&] {
            autoSim.estimate(ZeroPrepStrategy::Basic, trials);
        });

        widthsJson.set("w64_seed_shape_trials_per_sec",
                       seed_shape_rate);
        widthsJson.set("wide_trials_per_sec", wide_rate);
        widthsJson.set("speedup_wide_vs_w64",
                       w64_rate > 0 ? wide_rate / w64_rate : 0.0);
        widthsJson.set("speedup_wide_vs_w64_seed_shape",
                       seed_shape_rate > 0
                           ? wide_rate / seed_shape_rate
                           : 0.0);
        doc.set("widths", widthsJson);
        std::cout << "wide (auto) " << wide_rate / 1e6
                  << " Mtrials/s = "
                  << (w64_rate > 0 ? wide_rate / w64_rate : 0.0)
                  << "x w64, "
                  << (seed_shape_rate > 0
                          ? wide_rate / seed_shape_rate
                          : 0.0)
                  << "x w64 seed shape\n";
    }

    // Multicore thread scaling: the batched engine sharding one
    // estimate across its own threads, and the sweep engine
    // spreading whole points across its work-stealing pool. Both
    // are bit-identical across thread counts; only the rates move.
    if (scaling) {
        const unsigned hw = std::thread::hardware_concurrency();
        Json scalingJson = Json::object();
        scalingJson.set("hardware_concurrency",
                        static_cast<int>(hw ? hw : 1));

        const std::uint64_t scalingTrials = trials / 4;
        Json engineJson = Json::object();
        Json sweepJson = Json::object();
        for (int threads : {1, 2, 4}) {
            BatchSimConfig config;
            config.threads = threads;
            BatchAncillaSim sim(ErrorParams::paper(),
                                MovementModel{}, seed,
                                CorrectionSemantics::
                                    DiscardOnSyndrome,
                                config);
            const double rate = trialsPerSec(scalingTrials, [&] {
                sim.estimate(ZeroPrepStrategy::VerifyAndCorrect,
                             scalingTrials);
            });
            Json e = Json::object();
            e.set("trials_per_sec", rate);
            engineJson.set(std::to_string(threads), e);

            const SweepSpec spec =
                scalingSpec(scalingTrials / 8, seed);
            SweepOptions options;
            options.threads = threads;
            const SweepReport report = runSweep(spec, options);
            Json s = Json::object();
            s.set("points", report.points);
            s.set("points_per_sec",
                  report.wallSeconds > 0
                      ? static_cast<double>(report.points)
                          / report.wallSeconds
                      : 0.0);
            sweepJson.set(std::to_string(threads), s);

            std::cout << "threads=" << threads << ": engine "
                      << rate / 1e6 << " Mtrials/s, sweep "
                      << (report.wallSeconds > 0
                              ? static_cast<double>(report.points)
                                  / report.wallSeconds
                              : 0.0)
                      << " points/s\n";
        }
        scalingJson.set("engine_trials",
                        Json(scalingTrials));
        scalingJson.set("batch_engine", engineJson);
        scalingJson.set("sweep_engine", sweepJson);
        doc.set("thread_scaling", scalingJson);
    }

    try {
        doc.saveFile(out);
    } catch (const std::invalid_argument &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    std::cout << "wrote " << out << "\n";
    return 0;
}
