/**
 * @file
 * Machine-readable Monte Carlo engine baseline: times the scalar
 * reference engine against the bit-parallel batched engine on the
 * Figure 4 workloads and writes the trial rates and speedups to
 * BENCH_mc_engine.json, so future PRs can track the trajectory of
 * the simulation hot path without parsing human-oriented tables.
 *
 * Usage: bench_mc_engine_json [trials=N] [seed=S] [out=PATH]
 *   trials  batch-engine trials per workload (scalar runs
 *           trials/16 to keep the wall time balanced)
 *   out     output path (default BENCH_mc_engine.json)
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>

#include "BenchCommon.hh"
#include "error/AncillaSim.hh"
#include "error/BatchAncillaSim.hh"

namespace {

using namespace qc;
using Clock = std::chrono::steady_clock;

template <typename F>
double
trialsPerSec(std::uint64_t trials, F &&body)
{
    const auto t0 = Clock::now();
    body();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return secs > 0 ? static_cast<double>(trials) / secs : 0.0;
}

struct McWorkload
{
    const char *key;
    ZeroPrepStrategy strategy;
    bool pi8;
};

} // namespace

int
main(int argc, char **argv)
{
    const std::uint64_t trials =
        bench::argValue(argc, argv, "trials", 4000000);
    const std::uint64_t seed =
        bench::argValue(argc, argv, "seed", 20080623);
    const std::string out =
        bench::argString(argc, argv, "out",
                          "BENCH_mc_engine.json");

    const McWorkload workloads[] = {
        {"basic_prep", ZeroPrepStrategy::Basic, false},
        {"verify_and_correct", ZeroPrepStrategy::VerifyAndCorrect,
         false},
        {"pi8_conversion", ZeroPrepStrategy::VerifyAndCorrect, true},
    };

    std::ofstream json(out);
    if (!json) {
        std::cerr << "cannot open " << out << "\n";
        return 1;
    }
    json << "{\n  \"engine\": \"BatchAncillaSim\",\n"
         << "  \"batch_trials_per_word_op\": 64,\n"
         << "  \"trials\": " << trials << ",\n"
         << "  \"seed\": " << seed << ",\n"
         << "  \"workloads\": {\n";

    bool first = true;
    for (const McWorkload &w : workloads) {
        const std::uint64_t scalar_trials = trials / 16;
        AncillaPrepSimulator scalar(ErrorParams::paper(),
                                    MovementModel{}, seed);
        PrepEstimate scalar_est;
        const double scalar_rate =
            trialsPerSec(scalar_trials, [&] {
                scalar_est = w.pi8
                    ? scalar.estimateScalarPi8(scalar_trials)
                    : scalar.estimateScalar(w.strategy,
                                            scalar_trials);
            });

        BatchAncillaSim batch(ErrorParams::paper(), MovementModel{},
                              seed);
        PrepEstimate batch_est;
        const double batch_rate = trialsPerSec(trials, [&] {
            batch_est = w.pi8 ? batch.estimatePi8(trials)
                              : batch.estimate(w.strategy, trials);
        });

        if (!first)
            json << ",\n";
        first = false;
        json << "    \"" << w.key << "\": {\n"
             << "      \"scalar_trials_per_sec\": " << scalar_rate
             << ",\n"
             << "      \"batch_trials_per_sec\": " << batch_rate
             << ",\n"
             << "      \"speedup\": "
             << (scalar_rate > 0 ? batch_rate / scalar_rate : 0.0)
             << ",\n"
             << "      \"scalar_error_rate\": "
             << scalar_est.errorRate() << ",\n"
             << "      \"batch_error_rate\": "
             << batch_est.errorRate() << "\n    }";
        std::cout << w.key << ": scalar "
                  << scalar_rate / 1e6 << " Mtrials/s, batch "
                  << batch_rate / 1e6 << " Mtrials/s ("
                  << (scalar_rate > 0 ? batch_rate / scalar_rate
                                      : 0.0)
                  << "x)\n";
    }
    json << "\n  }\n}\n";
    std::cout << "wrote " << out << "\n";
    return 0;
}
