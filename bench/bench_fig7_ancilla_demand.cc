/**
 * @file
 * Figure 7: encoded-zero ancillae that must be in the system as
 * execution progresses, for each benchmark running at the speed of
 * data. Prints the binned average concurrency as a series plus an
 * ASCII sparkline per benchmark.
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "BenchCommon.hh"
#include "arch/SpeedOfData.hh"
#include "circuit/Dataflow.hh"
#include "common/Table.hh"
#include "factory/ZeroFactory.hh"
#include "layout/Builders.hh"

int
main(int argc, char **argv)
{
    using namespace qc;

    const std::uint64_t bins =
        bench::argValue(argc, argv, "bins", 40);
    const EncodedOpModel model(IonTrapParams::paper());

    // Factory provisioning against the demand curves: the zero
    // factory is sized with the verification acceptance measured by
    // the batched Pauli-frame Monte Carlo engine rather than the
    // hard-coded Section 2.3 constant.
    const ZeroFactory factory = bench::calibratedZeroFactory();

    for (const Workload &b : bench::paperBenchmarks()) {
        const DataflowGraph graph(b.lowered.circuit);
        const BandwidthSummary bw =
            bandwidthAtSpeedOfData(graph, model);
        const auto profile = ancillaDemandProfile(
            graph, model, static_cast<std::size_t>(bins));
        double peak = 0;
        for (double v : profile)
            peak = std::max(peak, v);

        bench::section("Figure 7: " + b.name
                       + " (zero-ancillae in flight)");
        std::cout << "runtime " << fmtFixed(toMs(bw.runtime), 2)
                  << " ms, average demand "
                  << fmtFixed(bw.zeroPerMs(), 1)
                  << " /ms, peak concurrency " << fmtFixed(peak, 1)
                  << ", factories for avg demand "
                  << static_cast<int>(std::ceil(
                         bw.zeroPerMs() / factory.throughput()))
                  << "\n";

        TextTable t;
        t.header({"t (ms)", "ancillae in flight", ""});
        const double bin_ms =
            toMs(bw.runtime) / static_cast<double>(bins);
        for (std::size_t i = 0; i < profile.size(); ++i) {
            const int bar_len = peak > 0
                ? static_cast<int>(profile[i] / peak * 50.0)
                : 0;
            t.row({fmtFixed((static_cast<double>(i) + 0.5) * bin_ms,
                            2),
                   fmtFixed(profile[i], 2),
                   std::string(static_cast<std::size_t>(bar_len),
                               '#')});
        }
        t.print(std::cout);
    }
    return 0;
}
