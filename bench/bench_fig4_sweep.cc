/**
 * @file
 * (pGate, pMove) grid sweep of the encoded-zero preparation error
 * rates on the bit-parallel batched Monte Carlo engine — the
 * Figure 4 error-rate plane, declared as specs/fig4_grid.json and
 * executed by the shared parallel sweep engine. `qcarch sweep
 * specs/fig4_grid.json` is the identical computation.
 *
 * Usage: bench_fig4_sweep [trials=N] [seed=S] [threads=T]
 *        [spec=PATH] [out=PATH]   (threads=0 = all cores)
 */

#include "BenchCommon.hh"

int
main(int argc, char **argv)
{
    return qc::bench::runSweepBench(
        argc, argv, "fig4_grid.json", "BENCH_fig4_sweep.json",
        {{"trials", "trials"}, {"seed", "seed"}});
}
