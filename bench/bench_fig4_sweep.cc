/**
 * @file
 * (pGate, pMove) grid sweep of the encoded-zero preparation error
 * rates on the bit-parallel batched Monte Carlo engine
 * (BatchAncillaSim) — the ROADMAP follow-up to Figure 4: now that a
 * single Figure 4 point costs a fraction of a second, the whole
 * error-rate plane is one bench run.
 *
 * Sweeps a log-spaced grid around the paper's operating point
 * (pGate = 1e-4, pMove = 1e-6, marked "paper_point": true) for the
 * Basic and VerifyAndCorrect strategies and writes every point to
 * BENCH_fig4_sweep.json for the machine-readable trajectory.
 *
 * Usage: bench_fig4_sweep [trials=N] [seed=S] [threads=T]
 *        [out=PATH]   (threads=0 = all hardware threads)
 */

#include <chrono>
#include <iostream>
#include <string>

#include "BenchCommon.hh"
#include "common/Table.hh"
#include "error/BatchAncillaSim.hh"
#include "layout/Builders.hh"

using namespace qc;
using Clock = std::chrono::steady_clock;

int
main(int argc, char **argv)
{
    const std::uint64_t trials =
        bench::argValue(argc, argv, "trials", 400000);
    const std::uint64_t seed =
        bench::argValue(argc, argv, "seed", 20080623);
    const std::string out = bench::argString(
        argc, argv, "out", "BENCH_fig4_sweep.json");
    BatchSimConfig config;
    config.threads = static_cast<int>(
        bench::argValue(argc, argv, "threads", 0));

    // Movement charges calibrated from the routed Fig 11 layout.
    const MovementModel movement = calibrateMovement(
        buildSimpleFactory(), IonTrapParams::paper());

    const double pGates[] = {1e-5, 3e-5, 1e-4, 3e-4, 1e-3};
    const double pMoves[] = {1e-7, 1e-6, 1e-5};
    const struct
    {
        ZeroPrepStrategy strategy;
        const char *key;
    } strategies[] = {
        {ZeroPrepStrategy::Basic, "basic"},
        {ZeroPrepStrategy::VerifyAndCorrect, "verify_and_correct"},
    };

    Json points = Json::array();
    const auto t0 = Clock::now();

    for (const auto &s : strategies) {
        bench::section(std::string("Figure 4 sweep: ")
                       + zeroPrepStrategyName(s.strategy) + " ("
                       + std::to_string(trials) + " trials/point)");
        TextTable t;
        t.header({"pGate", "pMove", "Error Rate", "95% CI",
                  "Verify Fail"});
        for (double pGate : pGates) {
            for (double pMove : pMoves) {
                ErrorParams errors;
                errors.pGate = pGate;
                errors.pMove = pMove;
                BatchAncillaSim sim(
                    errors, movement, seed,
                    CorrectionSemantics::DiscardOnSyndrome, config);
                const PrepEstimate est =
                    sim.estimate(s.strategy, trials);
                const Interval ci = est.errorInterval();
                t.row({fmtSci(pGate, 0), fmtSci(pMove, 0),
                       fmtSci(est.errorRate(), 2),
                       "[" + fmtSci(ci.lo, 1) + ", "
                           + fmtSci(ci.hi, 1) + "]",
                       fmtPct(est.discardRate(), 2)});

                Json point = Json::object();
                point.set("strategy", s.key);
                point.set("pGate", pGate);
                point.set("pMove", pMove);
                point.set("paper_point",
                          pGate == 1e-4 && pMove == 1e-6);
                point.set("error_rate", est.errorRate());
                point.set("ci_lo", ci.lo);
                point.set("ci_hi", ci.hi);
                point.set("verify_fail_rate", est.discardRate());
                point.set("trials", est.trials);
                points.push(point);
            }
        }
        t.print(std::cout);
    }

    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();

    Json doc = Json::object();
    doc.set("engine", "BatchAncillaSim");
    doc.set("semantics", "discard_on_syndrome");
    doc.set("trials_per_point", trials);
    doc.set("seed", seed);
    doc.set("grid_points", points.size());
    doc.set("wall_seconds", secs);
    doc.set("points", points);

    try {
        doc.saveFile(out);
    } catch (const std::invalid_argument &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    std::cout << "\nwrote " << points.size() << " grid points to "
              << out << " in " << fmtFixed(secs, 1) << " s\n";
    return 0;
}
