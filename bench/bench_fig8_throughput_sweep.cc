/**
 * @file
 * Figure 8: circuit execution time as a function of a steady
 * encoded-zero ancilla throughput, for each benchmark. The paper's
 * vertical reference line is the Table 3 average bandwidth; the
 * curve should fall steeply up to roughly that point and flatten at
 * the speed-of-data runtime beyond it.
 */

#include <cmath>
#include <iostream>

#include "BenchCommon.hh"
#include "arch/SpeedOfData.hh"
#include "arch/ThrottledRun.hh"
#include "circuit/Dataflow.hh"
#include "common/Table.hh"
#include "factory/ZeroFactory.hh"
#include "layout/Builders.hh"

int
main()
{
    using namespace qc;

    const EncodedOpModel model(IonTrapParams::paper());

    // Each sweep point is also priced in factories: the pipelined
    // zero factory sized with the Monte Carlo-measured acceptance
    // (batched Pauli-frame engine) rather than the hard-coded
    // Section 2.3 constant.
    const ZeroFactory factory = bench::calibratedZeroFactory();
    // Sweep each benchmark over multiples of its average bandwidth.
    const double fractions[] = {0.125, 0.25, 0.5, 0.75, 1.0,
                                1.5,   2.0,  3.0, 5.0,  10.0};

    for (const Workload &b : bench::paperBenchmarks()) {
        const DataflowGraph graph(b.lowered.circuit);
        const BandwidthSummary bw =
            bandwidthAtSpeedOfData(graph, model);

        bench::section("Figure 8: " + b.name);
        std::cout << "average bandwidth "
                  << fmtFixed(bw.zeroPerMs(), 1)
                  << " /ms (vertical line in the paper); speed-of-"
                     "data runtime "
                  << fmtFixed(toMs(bw.runtime), 2) << " ms\n";

        TextTable t;
        t.header({"throughput (/ms)", "x avg", "exec time (ms)",
                  "slowdown vs optimal", "factories"});
        for (double f : fractions) {
            const double rate = bw.zeroPerMs() * f;
            const ThrottledResult run =
                throttledRun(graph, model, rate);
            t.row({fmtFixed(rate, 1), fmtFixed(f, 3),
                   fmtFixed(toMs(run.makespan), 2),
                   fmtFixed(static_cast<double>(run.makespan)
                                / static_cast<double>(bw.runtime),
                            2),
                   std::to_string(static_cast<int>(std::ceil(
                       rate / factory.throughput())))});
        }
        t.print(std::cout);
    }
    return 0;
}
