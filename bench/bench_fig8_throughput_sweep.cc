/**
 * @file
 * Figure 8: circuit execution time as a function of a steady
 * encoded-zero ancilla throughput, for each benchmark — declared as
 * specs/fig8_throughput.json (the "zeroPerMsOfAverage" axis sweeps
 * multiples of each workload's own Table 3 average bandwidth) and
 * executed by the shared parallel sweep engine. The curve falls
 * steeply up to roughly the average-bandwidth line and flattens at
 * the speed-of-data runtime beyond it ("slowdown" per point).
 *
 * Usage: bench_fig8_throughput_sweep [threads=T] [spec=PATH]
 *        [out=PATH]
 */

#include "BenchCommon.hh"

int
main(int argc, char **argv)
{
    return qc::bench::runSweepBench(argc, argv,
                                    "fig8_throughput.json",
                                    "BENCH_fig8_throughput.json");
}
