/**
 * @file
 * Figure 8: circuit execution time as a function of a steady
 * encoded-zero ancilla throughput, for each benchmark. The paper's
 * vertical reference line is the Table 3 average bandwidth; the
 * curve should fall steeply up to roughly that point and flatten at
 * the speed-of-data runtime beyond it.
 */

#include <iostream>

#include "BenchCommon.hh"
#include "arch/SpeedOfData.hh"
#include "arch/ThrottledRun.hh"
#include "circuit/Dataflow.hh"
#include "common/Table.hh"

int
main()
{
    using namespace qc;

    const EncodedOpModel model(IonTrapParams::paper());
    // Sweep each benchmark over multiples of its average bandwidth.
    const double fractions[] = {0.125, 0.25, 0.5, 0.75, 1.0,
                                1.5,   2.0,  3.0, 5.0,  10.0};

    for (const Benchmark &b : bench::paperBenchmarks()) {
        const DataflowGraph graph(b.lowered.circuit);
        const BandwidthSummary bw =
            bandwidthAtSpeedOfData(graph, model);

        bench::section("Figure 8: " + b.name);
        std::cout << "average bandwidth "
                  << fmtFixed(bw.zeroPerMs(), 1)
                  << " /ms (vertical line in the paper); speed-of-"
                     "data runtime "
                  << fmtFixed(toMs(bw.runtime), 2) << " ms\n";

        TextTable t;
        t.header({"throughput (/ms)", "x avg", "exec time (ms)",
                  "slowdown vs optimal"});
        for (double f : fractions) {
            const double rate = bw.zeroPerMs() * f;
            const ThrottledResult run =
                throttledRun(graph, model, rate);
            t.row({fmtFixed(rate, 1), fmtFixed(f, 3),
                   fmtFixed(toMs(run.makespan), 2),
                   fmtFixed(static_cast<double>(run.makespan)
                                / static_cast<double>(bw.runtime),
                            2)});
        }
        t.print(std::cout);
    }
    return 0;
}
