/**
 * @file
 * Table 5: functional-unit characteristics of the pipelined
 * encoded-zero ancilla factory (symbolic latencies evaluated at the
 * ion-trap technology point, bandwidths in physical qubits per ms,
 * areas in macroblocks).
 */

#include <iostream>

#include "BenchCommon.hh"
#include "common/Table.hh"
#include "factory/FunctionalUnit.hh"

int
main()
{
    using namespace qc;

    const ZeroFactoryUnits units(IonTrapParams::paper(), 0.998);
    bench::section("Table 5: zero-factory functional units");

    TextTable t;
    t.header({"Functional Unit", "Latency (us)", "Stages",
              "In BW (q/ms)", "Out BW (q/ms)", "Area"});
    for (const FunctionalUnitSpec *u :
         {&units.zeroPrep, &units.cxStage, &units.catPrep,
          &units.verify, &units.bpCorrect}) {
        t.row({u->name, fmtFixed(toUs(u->latency), 0),
               fmtInt(u->stages), fmtFixed(u->inBandwidth(), 1),
               fmtFixed(u->outBandwidth(), 1),
               fmtFixed(u->area, 0)});
    }
    t.print(std::cout);

    std::cout << "\nPaper: 73/95/62/82/138 us; in BW 13.7/221.1/"
                 "96.8/122.0/152.2; out BW 13.7/221.1/96.8/85.2/"
                 "50.7; areas 1/28/6/10/21\n";
    return 0;
}
