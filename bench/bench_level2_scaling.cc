/**
 * @file
 * Level-1 vs level-2 concatenated [[7,1,3]] scaling study: the
 * Table 2/3/9 analogs at both code levels plus makespan/KLOPS/area
 * under the QLA and CQLA microarchitectures — declared as
 * specs/level2_scaling.json (a speed-of-data grid and an arch grid
 * over the codeLevel axis) and executed by the shared parallel
 * sweep engine.
 *
 * Usage: bench_level2_scaling [bits=N] [threads=T] [spec=PATH]
 *        [out=PATH]
 */

#include "BenchCommon.hh"

int
main(int argc, char **argv)
{
    return qc::bench::runSweepBench(argc, argv,
                                    "level2_scaling.json",
                                    "BENCH_level2.json",
                                    {{"bits", "bits"}});
}
