/**
 * @file
 * Level-1 vs level-2 concatenated [[7,1,3]] scaling study: the
 * Table 2 (latency split), Table 3 (ancilla bandwidth) and Table 9
 * (factory area) analogs at code level 2, plus makespan/KLOPS/area
 * under the QLA and CQLA microarchitectures at both levels.
 *
 * Every row is one qc::runExperiment call — the level is just the
 * ExperimentConfig::codeLevel knob — so the study doubles as the
 * end-to-end exercise of the recursive duration, error and factory
 * cascade models. Results land in BENCH_level2.json.
 *
 * Usage: bench_level2_scaling [bits=N] [out=PATH]
 */

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "BenchCommon.hh"
#include "codes/ConcatenatedCode.hh"
#include "common/Table.hh"

using namespace qc;
using Clock = std::chrono::steady_clock;

namespace {

Json
runJson(const Result &r)
{
    Json j = Json::object();
    j.set("schedule", r.schedule);
    if (!r.arch.empty())
        j.set("arch", r.arch);
    j.set("code_level", r.codeLevel);
    j.set("makespan_ms", toMs(r.makespan));
    j.set("klops", r.klops());
    j.set("factory_area", r.allocation.totalArea());
    if (r.schedule == "arch")
        j.set("ancilla_area", r.archRun.ancillaArea);
    j.set("zero_per_ms", r.bandwidth.zeroPerMs());
    j.set("pi8_per_ms", r.bandwidth.pi8PerMs());
    j.set("inter_level_zero_per_ms",
          r.allocation.interLevelZeroPerMs);
    return j;
}

} // namespace

int
main(int argc, char **argv)
{
    const int bits = static_cast<int>(
        bench::argValue(argc, argv, "bits", 16));
    const std::string out = bench::argString(
        argc, argv, "out", "BENCH_level2.json");
    const char *workloads[] = {"qrca", "qft"};
    const char *archs[] = {"qla", "cqla"};

    Json runs = Json::array();
    const auto t0 = Clock::now();

    for (const char *name : workloads) {
        ExperimentConfig base = ExperimentConfig::paper(name);
        base.params.bits = bits;
        Experiment experiment(base);

        // Speed-of-data analytics per level: the Table 2/3/9
        // analogs.
        bench::section(std::string(name) + " ("
                       + std::to_string(bits)
                       + " bits): Table 2/3/9 analogs by level");
        TextTable analog;
        analog.header({"Level", "DataOp us", "QEC us", "Prep us",
                       "SoD ms", "Zero/ms", "Pi8/ms", "L1->L2 /ms",
                       "Factory mb"});
        std::vector<Result> sod;
        for (int level = 1;
             level <= ConcatenatedSteane::maxModeledLevel; ++level) {
            ExperimentConfig c = base;
            c.codeLevel = level;
            const Result r = experiment.run(c);
            analog.row({std::to_string(level),
                        fmtFixed(toUs(r.split.dataOp), 0),
                        fmtFixed(toUs(r.split.qecInteract), 0),
                        fmtFixed(toUs(r.split.ancillaPrep), 0),
                        fmtFixed(toMs(r.makespan), 2),
                        fmtFixed(r.bandwidth.zeroPerMs(), 1),
                        fmtFixed(r.bandwidth.pi8PerMs(), 1),
                        fmtFixed(r.allocation.interLevelZeroPerMs,
                                 1),
                        fmtFixed(r.allocation.totalArea(), 0)});
            Json j = runJson(r);
            j.set("workload", name);
            j.set("bits", bits);
            runs.push(j);
            sod.push_back(r);
        }
        analog.print(std::cout);

        // Microarchitecture runs per level.
        bench::section(std::string(name)
                       + ": QLA / CQLA makespan by level");
        TextTable archTable;
        archTable.header({"Arch", "Level", "Makespan ms", "KLOPS",
                          "Ancilla mb", "Slowdown vs SoD"});
        for (const char *arch : archs) {
            for (int level = 1;
                 level <= ConcatenatedSteane::maxModeledLevel;
                 ++level) {
                ExperimentConfig c = base;
                c.codeLevel = level;
                c.schedule = ScheduleMode::Arch;
                c.arch = arch;
                const Result r = experiment.run(c);
                archTable.row(
                    {r.arch, std::to_string(level),
                     fmtFixed(toMs(r.makespan), 2),
                     fmtFixed(r.klops(), 1),
                     fmtFixed(r.archRun.ancillaArea, 0),
                     fmtFixed(r.slowdown(), 2)});
                Json j = runJson(r);
                j.set("workload", name);
                j.set("bits", bits);
                runs.push(j);
            }
        }
        archTable.print(std::cout);

        const double makespanRatio = sod[0].makespan > 0
            ? static_cast<double>(sod[1].makespan)
                / static_cast<double>(sod[0].makespan)
            : 0;
        const double areaRatio = sod[0].allocation.totalArea() > 0
            ? sod[1].allocation.totalArea()
                / sod[0].allocation.totalArea()
            : 0;
        std::cout << "\nlevel-2/level-1 at speed of data: makespan x"
                  << fmtFixed(makespanRatio, 2) << ", factory area x"
                  << fmtFixed(areaRatio, 1) << "\n";
    }

    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();

    Json doc = Json::object();
    doc.set("bench", "level2_scaling");
    doc.set("bits", bits);
    doc.set("max_level", ConcatenatedSteane::maxModeledLevel);
    doc.set("wall_seconds", secs);
    doc.set("runs", runs);

    try {
        doc.saveFile(out);
    } catch (const std::invalid_argument &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    std::cout << "\nwrote " << runs.size() << " runs to " << out
              << " in " << fmtFixed(secs, 1) << " s\n";
    return 0;
}
