/**
 * @file
 * Table 2: relative latency of useful data operations, data/ancilla
 * QEC interaction, and encoded ancilla preparation, assuming no
 * overlap between computation and preparation.
 *
 * Paper values (32-bit, us and % of total):
 *   QRCA:  29508 (5.2%) | 95641 (16.7%) | 447726 (78.2%)
 *   QCLA:   3827 (5.3%) | 11921 (16.7%) |  55806 (78.0%)
 *   QFT:   77057 (5.0%) | 365792 (23.7%) | 1097376 (71.2%)
 */

#include <iostream>

#include "BenchCommon.hh"
#include "arch/SpeedOfData.hh"
#include "circuit/Dataflow.hh"
#include "common/Table.hh"

int
main()
{
    using namespace qc;

    const EncodedOpModel model(IonTrapParams::paper());
    bench::section(
        "Table 2: latency split with no compute/prep overlap");

    TextTable t;
    t.header({"Circuit", "Data Op (us)", "%", "QEC Interact (us)",
              "%", "Ancilla Prep (us)", "%"});
    for (const Workload &b : bench::paperBenchmarks()) {
        const DataflowGraph graph(b.lowered.circuit);
        const LatencySplit split = latencySplit(graph, model);
        t.row({b.name, fmtFixed(toUs(split.dataOp), 0),
               fmtPct(split.dataOpShare()),
               fmtFixed(toUs(split.qecInteract), 0),
               fmtPct(split.qecInteractShare()),
               fmtFixed(toUs(split.ancillaPrep), 0),
               fmtPct(split.ancillaPrepShare())});
    }
    t.print(std::cout);

    std::cout << "\nPaper: QRCA 5.2/16.7/78.2%, QCLA 5.3/16.7/78.0%, "
                 "QFT 5.0/23.7/71.2%\n";
    return 0;
}
