/**
 * @file
 * Table 3: average encoded ancilla bandwidths needed for QEC and
 * for non-transversal pi/8 gates if each circuit is to execute at
 * the speed of data.
 *
 * Paper values (per ms): QRCA 34.8 / 7.0; QCLA 306.1 / 62.7;
 * QFT 36.8 / 8.6.
 */

#include <iostream>

#include "BenchCommon.hh"
#include "arch/SpeedOfData.hh"
#include "circuit/Dataflow.hh"
#include "common/Table.hh"

int
main()
{
    using namespace qc;

    const EncodedOpModel model(IonTrapParams::paper());
    bench::section("Table 3: average ancilla bandwidths (per ms)");

    TextTable t;
    t.header({"Circuit", "Runtime (ms)", "Zero BW (QEC)",
              "pi/8 BW", "Zeros total", "pi/8 total",
              "non-transversal %"});
    for (const Workload &b : bench::paperBenchmarks()) {
        const DataflowGraph graph(b.lowered.circuit);
        const BandwidthSummary bw =
            bandwidthAtSpeedOfData(graph, model);
        const GateCensus census = b.lowered.circuit.census();
        const double frac =
            static_cast<double>(census.nonTransversal1q())
            / static_cast<double>(census.total);
        t.row({b.name, fmtFixed(toMs(bw.runtime), 2),
               fmtFixed(bw.zeroPerMs(), 1),
               fmtFixed(bw.pi8PerMs(), 1),
               fmtInt(static_cast<long long>(bw.zerosConsumed)),
               fmtInt(static_cast<long long>(bw.pi8Consumed)),
               fmtPct(frac)});
    }
    t.print(std::cout);

    std::cout << "\nPaper: QRCA 34.8/7.0, QCLA 306.1/62.7, "
                 "QFT 36.8/8.6 per ms; non-transversal fractions "
                 "40.5%, 41.0%, 46.9%\n";
    return 0;
}
