/**
 * @file
 * Measures the two sweep-at-scale mechanisms behind Table 5-8-size
 * grids and emits BENCH_sweep_resume.json:
 *
 *  - **Const-shared-workload mode.** Per-point cost of an
 *    Experiment over a 32-bit paper workload when both the built
 *    workload and its DataflowGraph are shared immutably across
 *    points (the sweep engine's cross-point cache), versus sharing
 *    only the workload and rebuilding the graph per point — the
 *    pre-PR-5 behaviour. Results must be bit-identical between the
 *    modes; the JSON records both rates and the parity check.
 *
 *  - **Resume.** A sweep run fresh, then re-run with its own output
 *    as the `--resume` document: every point must be served from
 *    the file (executed == 0) and the merged document must be
 *    byte-identical to the fresh one. The JSON records the skip
 *    accounting and the determinism check.
 *
 * Usage: bench_sweep_resume [points=N] [out=PATH]
 */

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "BenchCommon.hh"

namespace {

using namespace qc;
using Clock = std::chrono::steady_clock;

double
seconds(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Distinct per-point configs sharing one workload (the shape of a
 *  factory design-space sweep: same kernel, varying knobs). */
std::vector<ExperimentConfig>
sweepPoints(int n)
{
    std::vector<ExperimentConfig> out;
    for (int i = 0; i < n; ++i) {
        ExperimentConfig config = ExperimentConfig::paper("qrca");
        config.demandBins = 20 + i;
        out.push_back(config);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const int n = static_cast<int>(
        bench::argValue(argc, argv, "points", 64));
    const std::string out = bench::argString(
        argc, argv, "out", "BENCH_sweep_resume.json");

    bench::section("const-shared-workload mode");
    FowlerSynth synth(ExperimentConfig::paper("qrca").synth);
    SharedWorkload shared = makeSharedWorkload(
        WorkloadRegistry::instance().build(
            "qrca", synth, ExperimentConfig::paper("qrca").params));
    const std::vector<ExperimentConfig> points = sweepPoints(n);

    // Workload shared, graph rebuilt per point (the old behaviour).
    auto t0 = Clock::now();
    std::string copiedDump;
    for (const ExperimentConfig &config : points) {
        Experiment experiment(config, shared.workload);
        copiedDump = experiment.run().toJson().dump(0);
    }
    const double copiedSeconds = seconds(t0);

    // Workload AND graph shared (the sweep engine's mode).
    t0 = Clock::now();
    std::string sharedDump;
    for (const ExperimentConfig &config : points) {
        Experiment experiment(config, shared);
        sharedDump = experiment.run().toJson().dump(0);
    }
    const double sharedSeconds = seconds(t0);

    const double copiedRate = n / copiedSeconds;
    const double sharedRate = n / sharedSeconds;
    const bool identical = copiedDump == sharedDump;
    std::cout << n << " points: graph-per-point "
              << fmtFixed(copiedRate, 1) << " points/s, shared graph "
              << fmtFixed(sharedRate, 1) << " points/s (x"
              << fmtFixed(sharedRate / copiedRate, 2)
              << "), results "
              << (identical ? "bit-identical" : "DIFFER") << "\n";

    bench::section("resume determinism");
    const SweepSpec spec = SweepSpec::fromJson(Json::parse(R"({
      "name": "resume_bench",
      "runner": "experiment",
      "base": {"workload": "qrca", "bits": 8,
               "synth": {"maxSyllables": 3}},
      "axes": [
        {"field": "schedule", "values": ["speed-of-data", "arch"]},
        {"field": "codeLevel", "values": [1, 2]}
      ]
    })"));
    const SweepReport fresh = runSweep(spec);
    SweepOptions resumeOptions;
    resumeOptions.resume = &fresh.doc;
    const SweepReport resumed = runSweep(spec, resumeOptions);
    const bool resumeIdentical =
        fresh.doc.dump() == resumed.doc.dump();
    std::cout << resumed.points << " points resumed: "
              << resumed.resumed << " from file, "
              << resumed.executed << " executed, document "
              << (resumeIdentical ? "byte-identical" : "DIFFERS")
              << "\n";

    Json doc = Json::object();
    doc.set("bench", "sweep_resume");
    doc.set("workload", "qrca");
    doc.set("bits", 32);
    Json sharing = Json::object();
    sharing.set("points", n);
    // The "_per_sec" suffix marks wall-clock rates for
    // check_bench_regression.py (regression-direction-only check).
    sharing.set("graph_per_point_points_per_sec", copiedRate);
    sharing.set("shared_graph_points_per_sec", sharedRate);
    sharing.set("speedup", sharedRate / copiedRate);
    sharing.set("results_identical", identical);
    doc.set("shared_workload", sharing);
    Json resume = Json::object();
    resume.set("points",
               static_cast<std::int64_t>(resumed.points));
    resume.set("resumed",
               static_cast<std::int64_t>(resumed.resumed));
    resume.set("executed",
               static_cast<std::int64_t>(resumed.executed));
    resume.set("byte_identical", resumeIdentical);
    doc.set("resume", resume);
    doc.saveFile(out);
    std::cout << "wrote " << out << "\n";
    return identical && resumeIdentical ? 0 : 1;
}
