/**
 * @file
 * google-benchmark microbenchmarks for the simulation engines
 * themselves: Pauli-frame Monte Carlo trial rate, event-queue
 * throughput, dataflow scheduling, factory design derivation, and
 * Fowler search. These guard against performance regressions that
 * would make the figure benches impractically slow.
 */

#include <benchmark/benchmark.h>

#include "arch/SpeedOfData.hh"
#include "arch/ThrottledRun.hh"
#include "circuit/Dataflow.hh"
#include "error/AncillaSim.hh"
#include "error/BatchAncillaSim.hh"
#include "factory/ZeroFactory.hh"
#include "kernels/Kernels.hh"
#include "sim/Simulator.hh"
#include "synth/Fowler.hh"

namespace {

using namespace qc;

const Benchmark &
qrca16()
{
    static FowlerSynth synth;
    static BenchmarkOptions opts = [] {
        BenchmarkOptions o;
        o.bits = 16;
        return o;
    }();
    static Benchmark b =
        makeBenchmark(BenchmarkKind::Qrca, synth, opts);
    return b;
}

void
BM_MonteCarloBasicPrep(benchmark::State &state)
{
    AncillaPrepSimulator sim(ErrorParams::paper(), MovementModel{},
                             1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.simulateOnce(ZeroPrepStrategy::Basic));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonteCarloBasicPrep);

void
BM_MonteCarloVerifyAndCorrect(benchmark::State &state)
{
    AncillaPrepSimulator sim(ErrorParams::paper(), MovementModel{},
                             2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.simulateOnce(ZeroPrepStrategy::VerifyAndCorrect));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonteCarloVerifyAndCorrect);

// Batched (bit-parallel) counterparts: one iteration advances a
// whole batch, so items/sec reads directly as trials/sec and is
// comparable with the scalar BM_MonteCarlo* rates above.

void
BM_BatchMonteCarloBasicPrep(benchmark::State &state)
{
    BatchAncillaSim sim(ErrorParams::paper(), MovementModel{}, 1);
    const std::uint64_t chunk =
        static_cast<std::uint64_t>(sim.batchTrials()) * 16;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.estimate(ZeroPrepStrategy::Basic, chunk));
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(chunk));
}
BENCHMARK(BM_BatchMonteCarloBasicPrep);

void
BM_BatchMonteCarloVerifyAndCorrect(benchmark::State &state)
{
    BatchAncillaSim sim(ErrorParams::paper(), MovementModel{}, 2);
    const std::uint64_t chunk =
        static_cast<std::uint64_t>(sim.batchTrials()) * 16;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.estimate(ZeroPrepStrategy::VerifyAndCorrect, chunk));
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(chunk));
}
BENCHMARK(BM_BatchMonteCarloVerifyAndCorrect);

void
BM_BatchMonteCarloPi8(benchmark::State &state)
{
    BatchAncillaSim sim(ErrorParams::paper(), MovementModel{}, 3);
    const std::uint64_t chunk =
        static_cast<std::uint64_t>(sim.batchTrials()) * 16;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.estimatePi8(chunk));
    }
    state.SetItemsProcessed(state.iterations()
                            * static_cast<std::int64_t>(chunk));
}
BENCHMARK(BM_BatchMonteCarloPi8);

void
BM_BernoulliMaskPaperGateRate(benchmark::State &state)
{
    Rng rng(7);
    BernoulliWord sampler(ErrorParams::paper().pGate);
    for (auto _ : state)
        benchmark::DoNotOptimize(sampler.next(rng));
    // 64 Bernoulli draws per word.
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_BernoulliMaskPaperGateRate);

void
BM_EventQueueThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator sim;
        int count = 0;
        for (int i = 0; i < 10000; ++i) {
            sim.schedule(usec(i), [&count] { ++count; });
        }
        sim.run();
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueThroughput);

void
BM_DataflowBuild(benchmark::State &state)
{
    const Circuit &circuit = qrca16().lowered.circuit;
    for (auto _ : state) {
        DataflowGraph graph(circuit);
        benchmark::DoNotOptimize(graph.numNodes());
    }
    state.SetItemsProcessed(state.iterations()
                            * qrca16().lowered.circuit.size());
}
BENCHMARK(BM_DataflowBuild);

void
BM_AsapSchedule(benchmark::State &state)
{
    const DataflowGraph graph(qrca16().lowered.circuit);
    const EncodedOpModel model;
    for (auto _ : state) {
        const BandwidthSummary bw =
            bandwidthAtSpeedOfData(graph, model);
        benchmark::DoNotOptimize(bw.runtime);
    }
}
BENCHMARK(BM_AsapSchedule);

void
BM_ThrottledRun(benchmark::State &state)
{
    const DataflowGraph graph(qrca16().lowered.circuit);
    const EncodedOpModel model;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            throttledRun(graph, model, 30.0).makespan);
    }
}
BENCHMARK(BM_ThrottledRun);

void
BM_ZeroFactoryDesign(benchmark::State &state)
{
    for (auto _ : state) {
        ZeroFactory factory;
        benchmark::DoNotOptimize(factory.totalArea());
    }
}
BENCHMARK(BM_ZeroFactoryDesign);

void
BM_FowlerSearchDepth4(benchmark::State &state)
{
    for (auto _ : state) {
        FowlerSynth synth(FowlerSynth::Options{4, 1e-3});
        benchmark::DoNotOptimize(synth.rotZ(5).error);
    }
}
BENCHMARK(BM_FowlerSearchDepth4);

} // namespace

BENCHMARK_MAIN();
