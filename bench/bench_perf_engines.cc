/**
 * @file
 * google-benchmark microbenchmarks for the simulation engines
 * themselves: Pauli-frame Monte Carlo trial rate, event-queue
 * throughput, dataflow scheduling, factory design derivation, and
 * Fowler search. These guard against performance regressions that
 * would make the figure benches impractically slow.
 */

#include <benchmark/benchmark.h>

#include "arch/SpeedOfData.hh"
#include "arch/ThrottledRun.hh"
#include "circuit/Dataflow.hh"
#include "error/AncillaSim.hh"
#include "factory/ZeroFactory.hh"
#include "kernels/Kernels.hh"
#include "sim/Simulator.hh"
#include "synth/Fowler.hh"

namespace {

using namespace qc;

const Benchmark &
qrca16()
{
    static FowlerSynth synth;
    static BenchmarkOptions opts = [] {
        BenchmarkOptions o;
        o.bits = 16;
        return o;
    }();
    static Benchmark b =
        makeBenchmark(BenchmarkKind::Qrca, synth, opts);
    return b;
}

void
BM_MonteCarloBasicPrep(benchmark::State &state)
{
    AncillaPrepSimulator sim(ErrorParams::paper(), MovementModel{},
                             1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.simulateOnce(ZeroPrepStrategy::Basic));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonteCarloBasicPrep);

void
BM_MonteCarloVerifyAndCorrect(benchmark::State &state)
{
    AncillaPrepSimulator sim(ErrorParams::paper(), MovementModel{},
                             2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim.simulateOnce(ZeroPrepStrategy::VerifyAndCorrect));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MonteCarloVerifyAndCorrect);

void
BM_EventQueueThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        Simulator sim;
        int count = 0;
        for (int i = 0; i < 10000; ++i) {
            sim.schedule(usec(i), [&count] { ++count; });
        }
        sim.run();
        benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueThroughput);

void
BM_DataflowBuild(benchmark::State &state)
{
    const Circuit &circuit = qrca16().lowered.circuit;
    for (auto _ : state) {
        DataflowGraph graph(circuit);
        benchmark::DoNotOptimize(graph.numNodes());
    }
    state.SetItemsProcessed(state.iterations()
                            * qrca16().lowered.circuit.size());
}
BENCHMARK(BM_DataflowBuild);

void
BM_AsapSchedule(benchmark::State &state)
{
    const DataflowGraph graph(qrca16().lowered.circuit);
    const EncodedOpModel model;
    for (auto _ : state) {
        const BandwidthSummary bw =
            bandwidthAtSpeedOfData(graph, model);
        benchmark::DoNotOptimize(bw.runtime);
    }
}
BENCHMARK(BM_AsapSchedule);

void
BM_ThrottledRun(benchmark::State &state)
{
    const DataflowGraph graph(qrca16().lowered.circuit);
    const EncodedOpModel model;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            throttledRun(graph, model, 30.0).makespan);
    }
}
BENCHMARK(BM_ThrottledRun);

void
BM_ZeroFactoryDesign(benchmark::State &state)
{
    for (auto _ : state) {
        ZeroFactory factory;
        benchmark::DoNotOptimize(factory.totalArea());
    }
}
BENCHMARK(BM_ZeroFactoryDesign);

void
BM_FowlerSearchDepth4(benchmark::State &state)
{
    for (auto _ : state) {
        FowlerSynth synth(FowlerSynth::Options{4, 1e-3});
        benchmark::DoNotOptimize(synth.rotZ(5).error);
    }
}
BENCHMARK(BM_FowlerSearchDepth4);

} // namespace

BENCHMARK_MAIN();
