/**
 * @file
 * Ablation (Section 5.3): simple vs pipelined zero factory. The
 * paper's observation is that pipelining does *not* improve
 * bandwidth per unit area (the technology is inherently synchronous
 * and gate locations are multi-purpose) — its benefit is the
 * concentrated output port. This bench quantifies the density
 * claim and the port-count difference for a range of bandwidth
 * targets.
 */

#include <cmath>
#include <iostream>

#include "BenchCommon.hh"
#include "common/Table.hh"
#include "factory/ZeroFactory.hh"

int
main()
{
    using namespace qc;

    const SimpleZeroFactory simple;
    const ZeroFactory pipelined;

    bench::section("Simple (Fig 11) vs pipelined (Fig 12) factory");
    TextTable t;
    t.header({"Design", "Area (MB)", "Throughput (/ms)",
              "BW per 100 MB", "Latency (us)", "Output ports"});
    t.row({"Simple", fmtFixed(simple.area(), 0),
           fmtFixed(simple.throughput(), 1),
           fmtFixed(simple.throughput() / simple.area() * 100, 2),
           fmtFixed(toUs(simple.latency()), 0), "1 per replica"});
    t.row({"Pipelined", fmtFixed(pipelined.totalArea(), 0),
           fmtFixed(pipelined.throughput(), 1),
           fmtFixed(pipelined.throughput() / pipelined.totalArea()
                        * 100,
                    2),
           fmtFixed(toUs(pipelined.latency()), 0), "1 total"});
    t.print(std::cout);

    bench::section("Replication to reach a bandwidth target");
    TextTable r;
    r.header({"Target (/ms)", "Simple replicas", "ports",
              "Pipelined factories", "ports"});
    for (double target : {10.0, 35.0, 100.0, 306.0}) {
        const int ns = static_cast<int>(
            std::ceil(target / simple.throughput()));
        const int np = static_cast<int>(
            std::ceil(target / pipelined.throughput()));
        r.row({fmtFixed(target, 1), fmtInt(ns), fmtInt(ns),
               fmtInt(np), fmtInt(np)});
    }
    r.print(std::cout);
    std::cout << "\nThe pipelined design needs ~3.4x fewer output "
                 "ports at matched bandwidth: fresh ancillae leave "
                 "from ports placed next to the data region "
                 "(Qalypso tile, Fig 16).\n";
    return 0;
}
