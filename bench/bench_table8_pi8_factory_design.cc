/**
 * @file
 * Table 8: bandwidth-matched unit counts of the pi/8 factory
 * (paper: 403 macroblocks, 18.3 encoded pi/8 ancillae / ms, fed by
 * one encoded zero per produced ancilla).
 */

#include <iostream>

#include "BenchCommon.hh"
#include "common/Table.hh"
#include "factory/Pi8Factory.hh"

int
main()
{
    using namespace qc;

    const Pi8Factory factory(IonTrapParams::paper());
    bench::section("Table 8: pi/8 factory design");

    TextTable t;
    t.header({"Stage", "Count", "Total Height", "Total Area"});
    for (const StageDesign &s : factory.stages()) {
        t.row({s.unit.name, fmtInt(s.count),
               fmtInt(s.totalHeight()), fmtFixed(s.totalArea(), 0)});
    }
    t.print(std::cout);

    bench::section("Totals");
    TextTable x;
    x.header({"Quantity", "Value", "Paper"});
    x.row({"Functional unit area",
           fmtFixed(factory.functionalUnitArea(), 0), "147"});
    x.row({"Crossbar area", fmtFixed(factory.crossbarArea(), 0),
           "256"});
    x.row({"Total area", fmtFixed(factory.totalArea(), 0), "403"});
    x.row({"Throughput (pi/8 ancillae/ms)",
           fmtFixed(factory.throughput(), 1), "18.3"});
    x.row({"Zero input bandwidth (per ms)",
           fmtFixed(factory.zeroInputBandwidth(), 1), "18.3"});
    x.row({"Conversion latency (us)",
           fmtFixed(toUs(factory.latency()), 0), "-"});
    x.print(std::cout);
    return 0;
}
