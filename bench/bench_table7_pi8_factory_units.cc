/**
 * @file
 * Table 7: stage characteristics of the encoded pi/8 ancilla
 * conversion factory (Fig 5b pipeline).
 */

#include <iostream>

#include "BenchCommon.hh"
#include "common/Table.hh"
#include "factory/FunctionalUnit.hh"

int
main()
{
    using namespace qc;

    const Pi8FactoryUnits units(IonTrapParams::paper());
    bench::section("Table 7: pi/8 factory stages");

    TextTable t;
    t.header({"Stage", "Latency (us)", "In BW (q/ms)",
              "Out BW (q/ms)", "Area"});
    for (const FunctionalUnitSpec *u :
         {&units.catPrep7, &units.transversal, &units.decode,
          &units.fixup}) {
        t.row({u->name, fmtFixed(toUs(u->latency), 0),
               fmtFixed(u->inBandwidth(), 1),
               fmtFixed(u->outBandwidth(), 1), fmtFixed(u->area, 0)});
    }
    t.print(std::cout);

    std::cout << "\nPaper: 218/53/218/74 us; in BW 32.1/264.2/64.2/"
                 "108.1; out BW 32.1/264.2/36.7/94.6; areas "
                 "12/7/19/8\n";
    return 0;
}
