/**
 * @file
 * Table 9: chip-area breakdown to generate encoded ancillae at each
 * benchmark's speed-of-data bandwidth — data region vs QEC zero
 * factories vs pi/8 factories (including their feeder zero
 * factories).
 *
 * Paper values (macroblocks, % of total):
 *   QRCA: data 679 (33.6%) | QEC 986.9 (48.8%) | pi/8 354.7 (17.6%)
 *   QCLA: data 861 (6.8%)  | QEC 8682.2 (68.4%)| pi/8 3154.4 (24.8%)
 *   QFT:  data 224 (13.2%) | QEC 1043.5 (61.3%)| pi/8 433.7 (25.5%)
 */

#include <iostream>

#include "BenchCommon.hh"
#include "arch/SpeedOfData.hh"
#include "circuit/Dataflow.hh"
#include "common/Table.hh"
#include "factory/Allocation.hh"
#include "layout/Builders.hh"

int
main()
{
    using namespace qc;

    const EncodedOpModel model(IonTrapParams::paper());
    const ZeroFactory zero;
    const Pi8Factory pi8;

    bench::section("Table 9: area breakdown at speed of data");
    TextTable t;
    t.header({"Circuit", "Zero BW", "Data Area", "%",
              "QEC Factories", "%", "pi/8 Factories", "%"});
    for (const Workload &b : bench::paperBenchmarks()) {
        const DataflowGraph graph(b.lowered.circuit);
        const BandwidthSummary bw =
            bandwidthAtSpeedOfData(graph, model);
        const FactoryAllocation alloc = allocateForBandwidth(
            zero, pi8, bw.zeroPerMs(), bw.pi8PerMs());
        const Area data =
            dataQubitArea() * b.lowered.circuit.numQubits();
        const Area total = data + alloc.totalArea();
        t.row({b.name, fmtFixed(bw.zeroPerMs(), 1),
               fmtFixed(data, 0), fmtPct(data / total),
               fmtFixed(alloc.qecArea(), 1),
               fmtPct(alloc.qecArea() / total),
               fmtFixed(alloc.pi8Area(), 1),
               fmtPct(alloc.pi8Area() / total)});
    }
    t.print(std::cout);

    std::cout
        << "\nPaper: QRCA 679/986.9/354.7 (33.6/48.8/17.6%), "
           "QCLA 861/8682.2/3154.4 (6.8/68.4/24.8%), "
           "QFT 224/1043.5/433.7 (13.2/61.3/25.5%)\n"
        << "Even the most serial benchmark devotes ~2/3 of the chip "
           "to ancilla generation.\n";
    return 0;
}
