/**
 * @file
 * Figure 15: execution time as a function of total ancilla-factory
 * area for the five microarchitectures — QLA and CQLA (the k = 1
 * points of their generalized forms), GQLA and GCQLA (a zipped
 * (arch, generatorsPerSite) axis), and Fully-Multiplexed over a
 * factory-area-budget axis — declared as specs/fig15_arch.json and
 * executed by the shared parallel sweep engine.
 *
 * Expected shapes (paper Section 5.2): Fully-Multiplexed reaches
 * near-optimal execution ("slowdown" ~ 1) at far smaller
 * "ancilla_area"; GQLA needs orders of magnitude more area to
 * match; GCQLA plateaus half an order to an order of magnitude
 * higher due to cache misses ("miss_rate").
 *
 * Usage: bench_fig15_arch_comparison [threads=T] [spec=PATH]
 *        [out=PATH]
 */

#include "BenchCommon.hh"

int
main(int argc, char **argv)
{
    return qc::bench::runSweepBench(argc, argv, "fig15_arch.json",
                                    "BENCH_fig15_arch.json");
}
