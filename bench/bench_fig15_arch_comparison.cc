/**
 * @file
 * Figure 15: execution time as a function of total ancilla-factory
 * area for the five microarchitectures — QLA and CQLA (the k = 1
 * points of their generalized forms), GQLA and GCQLA (k parallel
 * generators per site), and Fully-Multiplexed ancilla distribution
 * (Qalypso's organization) — all driven through the qc::Experiment
 * facade and the ArchModel registry.
 *
 * Expected shapes (paper Section 5.2): Fully-Multiplexed reaches
 * near-optimal execution at far smaller area; GQLA needs orders of
 * magnitude more area to match and plateaus at a similar level;
 * GCQLA plateaus half an order to an order of magnitude higher due
 * to cache misses.
 */

#include <iostream>

#include "BenchCommon.hh"
#include "common/Table.hh"

int
main()
{
    using namespace qc;

    for (const Workload &b : bench::paperBenchmarks()) {
        ExperimentConfig base = ExperimentConfig::paper(b.key);
        base.schedule = ScheduleMode::Arch;
        Experiment experiment(base, b);

        const Result ideal = [&] {
            ExperimentConfig c = base;
            c.schedule = ScheduleMode::SpeedOfData;
            return experiment.run(c);
        }();
        const Area data_area = 7.0 * ideal.qubits;

        bench::section("Figure 15: " + b.name + " (data qubit area "
                       + fmtFixed(data_area, 0) + " macroblocks; "
                       + "speed-of-data "
                       + fmtFixed(toMs(ideal.makespan), 2) + " ms)");

        TextTable t;
        t.header({"Microarch", "k / budget", "Factory Area",
                  "Exec (ms)", "x optimal", "miss rate"});

        auto runOne = [&](const std::string &arch, int k,
                          Area budget, const std::string &label) {
            ExperimentConfig c = base;
            c.arch = arch;
            c.generatorsPerSite = k;
            c.areaBudget = budget;
            c.cacheSlots = 24;
            const Result r = experiment.run(c);
            t.row({r.arch, label,
                   fmtFixed(r.archRun.ancillaArea, 0),
                   fmtFixed(toMs(r.makespan), 2),
                   fmtFixed(r.slowdown(), 2),
                   r.archRun.cacheAccesses
                       ? fmtPct(r.archRun.missRate())
                       : "-"});
        };

        // QLA / GQLA sweep over generators per data qubit.
        runOne("qla", 1, 0, "k=1");
        for (int k : {2, 4, 8, 16, 32})
            runOne("gqla", k, 0, "k=" + std::to_string(k));

        // CQLA / GCQLA sweep over generators per cache slot.
        runOne("cqla", 1, 0, "k=1");
        for (int k : {2, 4, 8, 16, 32})
            runOne("gcqla", k, 0, "k=" + std::to_string(k));

        // Fully multiplexed sweep over factory-area budget.
        for (Area budget : {250.0, 500.0, 1000.0, 2000.0, 4000.0,
                            8000.0, 16000.0, 64000.0}) {
            runOne("fma", 1, budget, fmtFixed(budget, 0) + " MB");
        }
        t.print(std::cout);
    }
    return 0;
}
