/**
 * @file
 * Figure 15: execution time as a function of total ancilla-factory
 * area for the five microarchitectures — QLA and CQLA (the k = 1
 * points of their generalized forms), GQLA and GCQLA (k parallel
 * generators per site), and Fully-Multiplexed ancilla distribution
 * (Qalypso's organization).
 *
 * Expected shapes (paper Section 5.2): Fully-Multiplexed reaches
 * near-optimal execution at far smaller area; GQLA needs orders of
 * magnitude more area to match and plateaus at a similar level;
 * GCQLA plateaus half an order to an order of magnitude higher due
 * to cache misses.
 */

#include <iostream>

#include "BenchCommon.hh"
#include "arch/Microarch.hh"
#include "arch/SpeedOfData.hh"
#include "circuit/Dataflow.hh"
#include "common/Table.hh"

int
main()
{
    using namespace qc;

    const EncodedOpModel model(IonTrapParams::paper());

    for (const Benchmark &b : bench::paperBenchmarks()) {
        const DataflowGraph graph(b.lowered.circuit);
        const BandwidthSummary bw =
            bandwidthAtSpeedOfData(graph, model);
        const Area data_area = 7.0 * b.lowered.circuit.numQubits();

        bench::section("Figure 15: " + b.name + " (data qubit area "
                       + fmtFixed(data_area, 0) + " macroblocks; "
                       + "speed-of-data "
                       + fmtFixed(toMs(bw.runtime), 2) + " ms)");

        TextTable t;
        t.header({"Microarch", "k / budget", "Factory Area",
                  "Exec (ms)", "x optimal", "miss rate"});

        auto runOne = [&](MicroarchKind kind, int k, Area budget,
                          const std::string &label) {
            MicroarchConfig config;
            config.kind = kind;
            config.generatorsPerSite = k;
            config.areaBudget = budget;
            config.cacheSlots = 24;
            const ArchRunResult r =
                runMicroarch(graph, model, config);
            t.row({microarchName(kind), label,
                   fmtFixed(r.ancillaArea, 0),
                   fmtFixed(toMs(r.makespan), 2),
                   fmtFixed(static_cast<double>(r.makespan)
                                / static_cast<double>(bw.runtime),
                            2),
                   r.cacheAccesses ? fmtPct(r.missRate()) : "-"});
        };

        // QLA / GQLA sweep over generators per data qubit.
        runOne(MicroarchKind::Qla, 1, 0, "k=1");
        for (int k : {2, 4, 8, 16, 32})
            runOne(MicroarchKind::Gqla, k,
                   0, "k=" + std::to_string(k));

        // CQLA / GCQLA sweep over generators per cache slot.
        runOne(MicroarchKind::Cqla, 1, 0, "k=1");
        for (int k : {2, 4, 8, 16, 32})
            runOne(MicroarchKind::Gcqla, k, 0,
                   "k=" + std::to_string(k));

        // Fully multiplexed sweep over factory-area budget.
        for (Area budget : {250.0, 500.0, 1000.0, 2000.0, 4000.0,
                            8000.0, 16000.0, 64000.0}) {
            runOne(MicroarchKind::FullyMultiplexed, 1, budget,
                   fmtFixed(budget, 0) + " MB");
        }
        t.print(std::cout);
    }
    return 0;
}
