/**
 * @file
 * Ablation (Sections 2.5 and 4.4.2, Figure 6): exact pi/2^k gates
 * via the recursive ancilla-factory cascade vs approximate
 * Fowler {H,T} words. The cascade needs arbitrary-precision
 * physical rotations but puts only ~2 expected ancilla
 * interactions on the data critical path; the Fowler word costs
 * one interaction per T gate plus the Clifford overhead.
 */

#include <iostream>

#include "BenchCommon.hh"
#include "codes/EncodedOp.hh"
#include "common/Table.hh"
#include "factory/Cascade.hh"
#include "synth/Fowler.hh"

int
main()
{
    using namespace qc;

    const IonTrapParams tech = IonTrapParams::paper();
    const EncodedOpModel model(tech);
    // Deeper search than the benchmark default: this is the offline
    // pre-computation trade-off the ablation is about.
    FowlerSynth synth(FowlerSynth::Options{/*maxSyllables=*/7});

    bench::section("Figure 6 cascade vs Fowler words: data critical "
                   "path per pi/2^k rotation");
    TextTable t;
    t.header({"k", "Fowler gates", "T count", "word error",
              "word latency (us)", "cascade E[CX]",
              "cascade latency (us)", "cascade error", "speedup"});
    for (int k = 3; k <= 10; ++k) {
        const ApproxSequence &word = synth.rotZ(k);
        // Word latency on the data: T gates are ancilla
        // interactions; Cliffords are transversal; each gate is
        // followed by its QEC interaction.
        Time word_latency = 0;
        for (GateKind g : word.gates) {
            Gate gate;
            gate.kind = g;
            gate.ops = {0, invalidQubit, invalidQubit};
            word_latency += model.dataLatency(gate);
            word_latency += model.qecInteractLatency();
        }
        const Time cascade =
            CascadeModel::expectedDataLatency(k, tech);
        const bool degenerate = word.gates.empty();
        t.row({fmtInt(k), fmtInt(word.size()),
               fmtInt(word.tCount()), fmtSci(word.error, 1),
               fmtFixed(toUs(word_latency), 0),
               fmtFixed(CascadeModel::expectedCxCount(k), 2),
               fmtFixed(toUs(cascade), 0), "exact",
               degenerate
                   ? std::string("- (word degenerates to I)")
                   : fmtFixed(static_cast<double>(word_latency)
                                  / static_cast<double>(cascade),
                              1)});
    }
    t.print(std::cout);
    std::cout
        << "\nTwo distinct advantages of the Figure 6 cascade: its "
           "data path is ~2 ancilla interactions regardless of k, "
           "and it is exact. Short {H,T} words cannot even beat "
           "the identity for k >= 4 at this search depth (Fowler's "
           "published length-40+ words are required), so the "
           "cascade is the only *faithful* fine-rotation option — "
           "but it needs exact physical pi/2^k pulses, which the "
           "paper conservatively does not assume (Section 2.5).\n";
    return 0;
}
