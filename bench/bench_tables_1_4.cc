/**
 * @file
 * Tables 1 and 4: the physical operation latencies of the ion-trap
 * technology point. These are model inputs; the bench echoes them
 * and the derived composite latencies every other artifact builds
 * on, so a reader can audit the whole chain from one place.
 */

#include <iostream>

#include "BenchCommon.hh"
#include "codes/EncodedOp.hh"
#include "common/Params.hh"
#include "common/Table.hh"

int
main()
{
    using namespace qc;

    const IonTrapParams tech = IonTrapParams::paper();

    bench::section("Table 1: physical operation latencies (us)");
    TextTable t1;
    t1.header({"Physical Operation", "Symbol", "Latency (us)",
               "Paper"});
    t1.row({"One-Qubit Gate", "t1q", fmtFixed(toUs(tech.t1q), 0),
            "1"});
    t1.row({"Two-Qubit Gate", "t2q", fmtFixed(toUs(tech.t2q), 0),
            "10"});
    t1.row({"Measurement", "tmeas", fmtFixed(toUs(tech.tmeas), 0),
            "50"});
    t1.row({"Zero Prepare", "tprep", fmtFixed(toUs(tech.tprep), 0),
            "51"});
    t1.print(std::cout);

    bench::section("Table 4: movement latencies (us)");
    TextTable t4;
    t4.header({"Physical Operation", "Symbol", "Latency (us)",
               "Paper"});
    t4.row({"Straight Move", "tmove", fmtFixed(toUs(tech.tmove), 0),
            "1"});
    t4.row({"Turn", "tturn", fmtFixed(toUs(tech.tturn), 0), "10"});
    t4.print(std::cout);

    bench::section("Derived composite latencies (us)");
    const EncodedOpModel model(tech);
    TextTable d;
    d.header({"Composite", "Latency (us)"});
    d.row({"QEC data/ancilla interaction",
           fmtFixed(toUs(model.qecInteractLatency()), 0)});
    d.row({"pi/8 ancilla interaction",
           fmtFixed(toUs(model.pi8InteractLatency()), 0)});
    d.row({"Encoded zero prep (Fig 4c, no movement)",
           fmtFixed(toUs(model.zeroPrepLatency()), 0)});
    d.row({"Encoded pi/8 prep (Fig 5b, no movement)",
           fmtFixed(toUs(model.pi8PrepLatency()), 0)});
    d.print(std::cout);
    return 0;
}
