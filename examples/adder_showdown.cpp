/**
 * @file
 * Adder showdown: the paper's Section 5 story on one page.
 *
 * Runs the 32-bit ripple-carry and carry-lookahead adders under
 * three microarchitectures — QLA (dedicated per-qubit generators),
 * CQLA (compute cache) and the fully-multiplexed organization of
 * Qalypso — at matched ancilla-generation area, and reports
 * execution time, speedups, and where the time goes.
 *
 * Usage: adder_showdown [bits=32]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "arch/Microarch.hh"
#include "arch/SpeedOfData.hh"
#include "circuit/Dataflow.hh"
#include "common/Table.hh"
#include "kernels/Kernels.hh"

int
main(int argc, char **argv)
{
    using namespace qc;

    int bits = 32;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("bits=", 0) == 0)
            bits = std::atoi(arg.c_str() + 5);
    }

    FowlerSynth synth;
    BenchmarkOptions options;
    options.bits = bits;
    const EncodedOpModel model(IonTrapParams::paper());

    for (auto kind : {BenchmarkKind::Qrca, BenchmarkKind::Qcla}) {
        const Benchmark bench = makeBenchmark(kind, synth, options);
        const DataflowGraph graph(bench.lowered.circuit);
        const BandwidthSummary bw =
            bandwidthAtSpeedOfData(graph, model);

        std::cout << "\n== " << bench.name << " (speed of data "
                  << fmtFixed(toMs(bw.runtime), 2) << " ms, needs "
                  << fmtFixed(bw.zeroPerMs(), 1)
                  << " zeros/ms) ==\n";

        // Reference: CQLA with 24 cache slots and one generator per
        // slot sets the matched area.
        MicroarchConfig cqla;
        cqla.kind = MicroarchKind::Cqla;
        cqla.cacheSlots = 24;
        const ArchRunResult cqla_run =
            runMicroarch(graph, model, cqla);

        MicroarchConfig qla;
        qla.kind = MicroarchKind::Qla;
        const ArchRunResult qla_run = runMicroarch(graph, model, qla);

        MicroarchConfig fma;
        fma.kind = MicroarchKind::FullyMultiplexed;
        fma.areaBudget = cqla_run.ancillaArea;
        const ArchRunResult fma_run = runMicroarch(graph, model, fma);

        TextTable t;
        t.header({"Microarch", "Gen Area (MB)", "Exec (ms)",
                  "x speed-of-data", "vs Qalypso"});
        auto row = [&](const char *name, const ArchRunResult &r) {
            t.row({name, fmtFixed(r.ancillaArea, 0),
                   fmtFixed(toMs(r.makespan), 2),
                   fmtFixed(static_cast<double>(r.makespan)
                                / static_cast<double>(bw.runtime),
                            2),
                   fmtFixed(static_cast<double>(r.makespan)
                                / static_cast<double>(
                                    fma_run.makespan),
                            1)
                       + "x"});
        };
        row("QLA", qla_run);
        row("CQLA", cqla_run);
        row("Qalypso (FMA)", fma_run);
        t.print(std::cout);

        std::cout << "CQLA miss rate "
                  << fmtPct(cqla_run.missRate()) << ", "
                  << qla_run.teleports
                  << " teleports under QLA.\n";
    }

    std::cout << "\nThe fully-multiplexed organization wins at "
                 "matched area because shared factories are never "
                 "idle: ancillae flow to whichever data qubit needs "
                 "them next (paper Fig 14b/16).\n";
    return 0;
}
