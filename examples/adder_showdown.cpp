/**
 * @file
 * Adder showdown: the paper's Section 5 story on one page, driven
 * entirely through the qc::Experiment facade.
 *
 * Runs the 32-bit ripple-carry and carry-lookahead adders under
 * three microarchitectures — QLA (dedicated per-qubit generators),
 * CQLA (compute cache) and the fully-multiplexed organization of
 * Qalypso — at matched ancilla-generation area, and reports
 * execution time, speedups, and where the time goes.
 *
 * Usage: adder_showdown [bits=32]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "api/Qc.hh"
#include "common/Table.hh"

int
main(int argc, char **argv)
{
    using namespace qc;

    int bits = 32;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("bits=", 0) == 0)
            bits = std::atoi(arg.c_str() + 5);
    }

    for (const char *workload : {"qrca", "qcla"}) {
        ExperimentConfig base = ExperimentConfig::paper(workload);
        base.params.bits = bits;
        base.schedule = ScheduleMode::Arch;
        base.cacheSlots = 24;
        Experiment experiment(base);

        ExperimentConfig ideal = base;
        ideal.schedule = ScheduleMode::SpeedOfData;
        const Result sod = experiment.run(ideal);

        std::cout << "\n== " << sod.workload << " (speed of data "
                  << fmtFixed(toMs(sod.makespan), 2) << " ms, needs "
                  << fmtFixed(sod.bandwidth.zeroPerMs(), 1)
                  << " zeros/ms) ==\n";

        // Reference: CQLA with 24 cache slots and one generator per
        // slot sets the matched area.
        ExperimentConfig cqla = base;
        cqla.arch = "cqla";
        const Result cqla_run = experiment.run(cqla);

        ExperimentConfig qla = base;
        qla.arch = "qla";
        const Result qla_run = experiment.run(qla);

        ExperimentConfig fma = base;
        fma.arch = "fma";
        fma.areaBudget = cqla_run.archRun.ancillaArea;
        const Result fma_run = experiment.run(fma);

        TextTable t;
        t.header({"Microarch", "Gen Area (MB)", "Exec (ms)",
                  "x speed-of-data", "vs Qalypso"});
        auto row = [&](const Result &r) {
            t.row({r.arch, fmtFixed(r.archRun.ancillaArea, 0),
                   fmtFixed(toMs(r.makespan), 2),
                   fmtFixed(r.slowdown(), 2),
                   fmtFixed(static_cast<double>(r.makespan)
                                / static_cast<double>(
                                    fma_run.makespan),
                            1)
                       + "x"});
        };
        row(qla_run);
        row(cqla_run);
        row(fma_run);
        t.print(std::cout);

        std::cout << "CQLA miss rate "
                  << fmtPct(cqla_run.archRun.missRate()) << ", "
                  << qla_run.archRun.teleports
                  << " teleports under QLA.\n";
    }

    std::cout << "\nThe fully-multiplexed organization wins at "
                 "matched area because shared factories are never "
                 "idle: ancillae flow to whichever data qubit needs "
                 "them next (paper Fig 14b/16).\n";
    return 0;
}
