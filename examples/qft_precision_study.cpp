/**
 * @file
 * QFT precision study: the Section 2.5 trade-off made concrete,
 * swept through the qc::Experiment facade.
 *
 * Small controlled rotations in the QFT must be either elided
 * (approximate QFT) or expanded into fault-tolerant {H, T} words of
 * bounded precision. Both choices trade circuit fidelity against
 * pi/8-ancilla bandwidth and runtime. This example sweeps the
 * rotation cutoff and the word-search depth for a mid-sized QFT —
 * each sweep point is one ExperimentConfig — and reports gate
 * counts, the accumulated approximation budget, and the resulting
 * speed-of-data bandwidth demands.
 *
 * Usage: qft_precision_study [bits=16]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "api/Qc.hh"
#include "common/Table.hh"

int
main(int argc, char **argv)
{
    using namespace qc;

    int bits = 16;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("bits=", 0) == 0)
            bits = std::atoi(arg.c_str() + 5);
    }

    std::cout << "== " << bits
              << "-bit QFT: rotation cutoff sweep (word depth 6) ==\n";
    TextTable t;
    t.header({"maxRotK", "gates", "T gates", "elided",
              "elided angle (rad)", "word err sum", "runtime (ms)",
              "zero BW", "pi/8 BW"});
    for (int cutoff : {2, 4, 6, 8, 10}) {
        ExperimentConfig config = ExperimentConfig::paper("qft");
        config.params.bits = bits;
        config.params.lowering.maxRotK = cutoff;
        Experiment experiment(config);
        const Result r = experiment.run();
        const LoweringStats &stats =
            experiment.workload().lowered.stats;
        t.row({fmtInt(cutoff),
               fmtInt(static_cast<long long>(r.gates)),
               fmtInt(static_cast<long long>(r.pi8Gates)),
               fmtInt(static_cast<long long>(stats.elided)),
               fmtFixed(stats.elidedAngleSum, 4),
               fmtFixed(stats.approxErrorSum, 3),
               fmtFixed(toMs(r.makespan), 2),
               fmtFixed(r.bandwidth.zeroPerMs(), 1),
               fmtFixed(r.bandwidth.pi8PerMs(), 1)});
    }
    t.print(std::cout);

    std::cout << "\n== Word-search depth sweep (cutoff 8) ==\n";
    TextTable d;
    d.header({"syllables", "gates", "T gates", "word err sum",
              "zero BW", "pi/8 BW"});
    for (int depth : {3, 4, 5, 6}) {
        ExperimentConfig config = ExperimentConfig::paper("qft");
        config.params.bits = bits;
        config.synth.maxSyllables = depth;
        Experiment experiment(config);
        const Result r = experiment.run();
        d.row({fmtInt(depth),
               fmtInt(static_cast<long long>(r.gates)),
               fmtInt(static_cast<long long>(r.pi8Gates)),
               fmtFixed(
                   experiment.workload().lowered.stats.approxErrorSum,
                   3),
               fmtFixed(r.bandwidth.zeroPerMs(), 1),
               fmtFixed(r.bandwidth.pi8PerMs(), 1)});
    }
    d.print(std::cout);

    std::cout << "\nCoarser cutoffs shed gates (and ancilla "
                 "bandwidth) at the price of a larger skipped-angle "
                 "budget; deeper searches buy fidelity per word "
                 "with offline compute, not runtime.\n";
    return 0;
}
