/**
 * @file
 * Quickstart: the core qalypso workflow in ~60 lines.
 *
 * 1. Generate a benchmark kernel (a 32-bit ripple-carry adder).
 * 2. Lower it to the fault-tolerant [[7,1,3]] gate set.
 * 3. Ask how fast it can run at the "speed of data" and what
 *    encoded-ancilla bandwidth that requires (paper Section 3).
 * 4. Size pipelined ancilla factories to that bandwidth
 *    (Section 4) and report the resulting chip-area split
 *    (Section 5.1).
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "arch/SpeedOfData.hh"
#include "circuit/Dataflow.hh"
#include "codes/EncodedOp.hh"
#include "factory/Allocation.hh"
#include "kernels/Kernels.hh"
#include "layout/Builders.hh"

int
main()
{
    using namespace qc;

    // 1. Generate and 2. lower the kernel.
    FowlerSynth synth; // rotation-word cache (QRCA needs none)
    BenchmarkOptions options;
    options.bits = 32;
    const Benchmark bench =
        makeBenchmark(BenchmarkKind::Qrca, synth, options);

    const GateCensus census = bench.lowered.circuit.census();
    std::cout << bench.name << ": "
              << bench.lowered.circuit.numQubits()
              << " logical qubits, " << census.total
              << " fault-tolerant gates (" << census.nonTransversal1q()
              << " pi/8 gates from "
              << bench.lowered.stats.toffolis << " Toffolis)\n";

    // 3. Speed-of-data analysis.
    const EncodedOpModel model(IonTrapParams::paper());
    const DataflowGraph graph(bench.lowered.circuit);
    const BandwidthSummary bw = bandwidthAtSpeedOfData(graph, model);
    std::cout << "speed-of-data runtime: " << toMs(bw.runtime)
              << " ms\n"
              << "required bandwidth: " << bw.zeroPerMs()
              << " encoded zeros/ms + " << bw.pi8PerMs()
              << " encoded pi/8/ms\n";

    // 4. Factory sizing and area split.
    const ZeroFactory zero;   // 298 macroblocks, 10.5 ancillae/ms
    const Pi8Factory pi8;     // 403 macroblocks, 18.3 ancillae/ms
    const FactoryAllocation alloc = allocateForBandwidth(
        zero, pi8, bw.zeroPerMs(), bw.pi8PerMs());
    const Area data = dataQubitArea()
        * bench.lowered.circuit.numQubits();

    std::cout << "chip area: data " << data << " MB, QEC factories "
              << alloc.qecArea() << " MB, pi/8 chain "
              << alloc.pi8Area() << " MB  ("
              << 100.0 * (alloc.totalArea())
                     / (data + alloc.totalArea())
              << "% of the chip is ancilla generation)\n";
    return 0;
}
