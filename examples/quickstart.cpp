/**
 * @file
 * Quickstart: the core qalypso workflow through the qc::Experiment
 * facade.
 *
 * One ExperimentConfig names a workload from the registry, the
 * schedule mode, and the technology point; one runExperiment() call
 * generates the kernel, lowers it to the fault-tolerant [[7,1,3]]
 * gate set, runs the speed-of-data analysis (paper Section 3),
 * sizes pipelined ancilla factories to the demanded bandwidth
 * (Section 4), and returns a structured qc::Result — which also
 * serializes to JSON for scripting.
 *
 * Build and run:
 *   cmake -B build -S . -DQC_EXAMPLES=ON && cmake --build build -j
 *   ./build/quickstart
 */

#include <iostream>

#include "api/Qc.hh"
#include "layout/Builders.hh"

int
main()
{
    using namespace qc;

    // The registry knows every workload by name.
    std::cout << "registered workloads:";
    for (const std::string &name :
         WorkloadRegistry::instance().names())
        std::cout << " " << name;
    std::cout << "\nregistered architectures:";
    for (const std::string &key : ArchRegistry::instance().keys())
        std::cout << " " << key;
    std::cout << "\n\n";

    // One config describes the whole experiment: a 32-bit
    // ripple-carry adder at the paper's technology point, scheduled
    // at the speed of data.
    ExperimentConfig config = ExperimentConfig::paper("qrca");
    const Result result = runExperiment(config);

    std::cout << result.workload << ": " << result.qubits
              << " logical qubits, " << result.gates
              << " fault-tolerant gates (" << result.pi8Gates
              << " pi/8 gates)\n";
    std::cout << "speed-of-data runtime: "
              << toMs(result.bandwidth.runtime) << " ms\n"
              << "required bandwidth: "
              << result.bandwidth.zeroPerMs()
              << " encoded zeros/ms + " << result.bandwidth.pi8PerMs()
              << " encoded pi/8/ms\n"
              << "logical throughput: " << result.klops()
              << " KLOPS\n";

    // Factory sizing and area split come with the result.
    const Area data = dataQubitArea() * result.qubits;
    const Area factories = result.allocation.totalArea();
    std::cout << "chip area: data " << data << " MB, QEC factories "
              << result.allocation.qecArea() << " MB, pi/8 chain "
              << result.allocation.pi8Area() << " MB  ("
              << 100.0 * factories / (data + factories)
              << "% of the chip is ancilla generation)\n\n";

    // The same experiment as a microarchitecture simulation on
    // Qalypso's fully-multiplexed organization: flip two fields.
    config.schedule = ScheduleMode::Arch;
    config.arch = "fma";
    const Result onChip = runExperiment(config);
    std::cout << "on " << onChip.arch << " ("
              << onChip.archRun.ancillaArea
              << " MB of factories): " << toMs(onChip.makespan)
              << " ms, " << onChip.slowdown()
              << "x the speed-of-data ideal\n\n";

    // Every result serializes for the BENCH_* trajectory files.
    std::cout << "result JSON:\n"
              << onChip.toJson().dump() << "\n";
    return 0;
}
