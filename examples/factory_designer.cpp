/**
 * @file
 * Factory design-space explorer: how the pipelined zero and pi/8
 * factory designs respond to technology changes.
 *
 * The paper keeps all analyses symbolic in the physical latencies
 * (Tables 1/4) precisely so they survive technology evolution; this
 * example exercises that: it re-derives the bandwidth-matched
 * designs of Tables 5-8 for a range of hypothetical ion-trap
 * operating points (faster measurement, slower movement, ...) and
 * shows how unit counts, area and throughput shift.
 *
 * Usage: factory_designer
 */

#include <iostream>

#include "common/Table.hh"
#include "factory/Pi8Factory.hh"
#include "factory/ZeroFactory.hh"

namespace {

using namespace qc;

struct TechPoint
{
    const char *name;
    IonTrapParams params;
};

void
report(const TechPoint &point)
{
    const ZeroFactory zero(point.params);
    const Pi8Factory pi8(point.params);

    std::cout << "\n== " << point.name << " ==\n";
    TextTable t;
    t.header({"Stage", "Count", "Area"});
    for (const StageDesign &s : zero.stages())
        t.row({s.unit.name, fmtInt(s.count),
               fmtFixed(s.totalArea(), 0)});
    t.print(std::cout);
    std::cout << "zero factory: " << zero.totalArea()
              << " MB total, " << fmtFixed(zero.throughput(), 1)
              << " encoded zeros/ms, latency "
              << fmtFixed(toUs(zero.latency()), 0) << " us\n";
    std::cout << "pi/8 factory: " << pi8.totalArea()
              << " MB total, " << fmtFixed(pi8.throughput(), 1)
              << " pi/8 ancillae/ms\n";
    std::cout << "bandwidth density: "
              << fmtFixed(zero.throughput() / zero.totalArea() * 100,
                          2)
              << " zeros/ms per 100 MB\n";
}

} // namespace

int
main()
{
    TechPoint baseline{"Paper baseline (Tables 1 & 4)",
                       IonTrapParams::paper()};

    TechPoint fast_meas{"5x faster measurement (tmeas = 10 us)",
                        IonTrapParams::paper()};
    fast_meas.params.tmeas = usec(10);

    TechPoint slow_moves{"10x slower movement (tmove = 10 us, "
                         "tturn = 100 us)",
                         IonTrapParams::paper()};
    slow_moves.params.tmove = usec(10);
    slow_moves.params.tturn = usec(100);

    TechPoint fast_2q{"2x faster two-qubit gates (t2q = 5 us)",
                      IonTrapParams::paper()};
    fast_2q.params.t2q = usec(5);

    for (const TechPoint &point :
         {baseline, fast_meas, slow_moves, fast_2q}) {
        report(point);
    }

    std::cout << "\nNote how the design re-balances itself: faster "
                 "two-qubit gates speed up the CX network and drag "
                 "the whole prep farm larger to keep it fed, while "
                 "faster measurement shortens verification and "
                 "correction without moving the CX bottleneck. The "
                 "symbolic formulation makes every such what-if a "
                 "one-line change.\n";
    return 0;
}
